#include "contracts/escrow.h"

namespace icbtc::contracts {

const char* to_string(EscrowState s) {
  switch (s) {
    case EscrowState::kAwaitingDeposit: return "awaiting-deposit";
    case EscrowState::kFunded: return "funded";
    case EscrowState::kReleased: return "released";
    case EscrowState::kRefunded: return "refunded";
  }
  return "?";
}

EscrowContract::EscrowContract(canister::BitcoinIntegration& integration,
                               const std::string& escrow_id, std::string buyer_address,
                               std::string seller_address, bitcoin::Amount price,
                               int required_confirmations)
    : integration_(&integration),
      wallet_(integration,
              crypto::DerivationPath{util::Bytes{'e', 's', 'c'},
                                     util::Bytes(escrow_id.begin(), escrow_id.end())}),
      buyer_address_(std::move(buyer_address)),
      seller_address_(std::move(seller_address)),
      price_(price),
      required_confirmations_(required_confirmations) {
  if (price <= 0) throw std::invalid_argument("EscrowContract: price must be positive");
}

EscrowState EscrowContract::refresh() {
  if (state_ != EscrowState::kAwaitingDeposit) return state_;
  auto balance = wallet_.balance(required_confirmations_);
  if (balance.ok() && balance.value >= price_) state_ = EscrowState::kFunded;
  return state_;
}

SendResult EscrowContract::pay_out(const std::string& to, EscrowState next_state) {
  SendResult result;
  if (state_ != EscrowState::kFunded) {
    result.status = canister::Status::kMalformedTransaction;
    return result;
  }
  // Pay the full deposit minus fees: spend everything by paying price minus a
  // fee allowance, keeping the contract's address empty afterwards.
  constexpr bitcoin::Amount kFeeAllowance = 2000;
  result = wallet_.send({{to, price_ - kFeeAllowance}}, /*fee_per_vbyte=*/2,
                        required_confirmations_);
  if (result.ok()) state_ = next_state;
  return result;
}

SendResult EscrowContract::release() { return pay_out(seller_address_, EscrowState::kReleased); }

SendResult EscrowContract::refund() { return pay_out(buyer_address_, EscrowState::kRefunded); }

}  // namespace icbtc::contracts
