// A Bitcoin escrow smart contract (one of the applications motivating the
// paper, §I): the buyer funds an escrow address held by the contract's
// threshold key; once the deposit has the required confirmations the
// arbiter can release the funds to the seller or refund the buyer. No party
// ever holds the key — it exists only as threshold shares across the subnet.
#pragma once

#include <string>

#include "contracts/btc_wallet.h"

namespace icbtc::contracts {

enum class EscrowState {
  kAwaitingDeposit,  // balance at c* confirmations below the price
  kFunded,           // deposit confirmed; awaiting release/refund decision
  kReleased,         // paid out to the seller
  kRefunded,         // returned to the buyer
};

const char* to_string(EscrowState s);

class EscrowContract {
 public:
  /// `escrow_id` isolates this escrow's key (derivation path component);
  /// `required_confirmations` is the c* of §IV-A — release decisions are
  /// critical actions and wait for deep confirmation.
  EscrowContract(canister::BitcoinIntegration& integration, const std::string& escrow_id,
                 std::string buyer_address, std::string seller_address, bitcoin::Amount price,
                 int required_confirmations = 6);

  /// Where the buyer must deposit.
  const std::string& deposit_address() const { return wallet_.address(); }
  /// The escrow's threshold wallet (its key path and public key).
  const BtcWallet& wallet() const { return wallet_; }
  EscrowState state() const { return state_; }
  bitcoin::Amount price() const { return price_; }

  /// Re-checks the deposit (reads the Bitcoin canister). Transitions
  /// kAwaitingDeposit -> kFunded when the confirmed balance reaches the
  /// price. Returns the current state.
  EscrowState refresh();

  /// Releases the funds to the seller. Only valid in kFunded.
  SendResult release();
  /// Refunds the buyer. Only valid in kFunded.
  SendResult refund();

 private:
  SendResult pay_out(const std::string& to, EscrowState next_state);

  canister::BitcoinIntegration* integration_;
  BtcWallet wallet_;
  std::string buyer_address_;
  std::string seller_address_;
  bitcoin::Amount price_;
  int required_confirmations_;
  EscrowState state_ = EscrowState::kAwaitingDeposit;
};

}  // namespace icbtc::contracts
