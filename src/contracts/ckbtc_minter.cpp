#include "contracts/ckbtc_minter.h"

#include <algorithm>

namespace icbtc::contracts {

using canister::Status;

bitcoin::Amount Ledger::balance_of(const Principal& owner) const {
  auto it = balances_.find(owner);
  return it == balances_.end() ? 0 : it->second;
}

void Ledger::mint(const Principal& to, bitcoin::Amount amount) {
  if (amount <= 0) throw std::invalid_argument("Ledger::mint: non-positive amount");
  balances_[to] += amount;
  total_supply_ += amount;
  ++transactions_;
}

bool Ledger::burn(const Principal& from, bitcoin::Amount amount) {
  if (amount <= 0) return false;
  auto it = balances_.find(from);
  if (it == balances_.end() || it->second < amount) return false;
  it->second -= amount;
  total_supply_ -= amount;
  ++transactions_;
  return true;
}

bool Ledger::transfer(const Principal& from, const Principal& to, bitcoin::Amount amount) {
  if (amount <= 0) return false;
  auto it = balances_.find(from);
  if (it == balances_.end() || it->second < amount) return false;
  it->second -= amount;
  balances_[to] += amount;
  ++transactions_;
  return true;
}

CkBtcMinter::CkBtcMinter(canister::BitcoinIntegration& integration, const std::string& minter_id,
                         int required_confirmations)
    : integration_(&integration),
      minter_id_(minter_id),
      required_confirmations_(required_confirmations) {
  if (required_confirmations < 1) {
    throw std::invalid_argument("CkBtcMinter: need at least one confirmation");
  }
}

CkBtcMinter::UserAccount& CkBtcMinter::account_for(const Ledger::Principal& user) {
  auto it = accounts_.find(user);
  if (it == accounts_.end()) {
    crypto::DerivationPath path = {
        util::Bytes{'c', 'k', 'b', 't', 'c'},
        util::Bytes(minter_id_.begin(), minter_id_.end()),
        util::Bytes(user.begin(), user.end()),
    };
    UserAccount account;
    account.wallet = std::make_unique<BtcWallet>(*integration_, std::move(path));
    account.address = account.wallet->address();
    it = accounts_.emplace(user, std::move(account)).first;
  }
  return it->second;
}

const std::string& CkBtcMinter::deposit_address_for(const Ledger::Principal& user) {
  return account_for(user).address;
}

canister::Outcome<bitcoin::Amount> CkBtcMinter::update_balance(const Ledger::Principal& user) {
  UserAccount& account = account_for(user);
  auto utxos = account.wallet->utxos(required_confirmations_);
  if (!utxos.ok()) return {utxos.status, 0};

  bitcoin::Amount minted = 0;
  for (const auto& utxo : utxos.value) {
    if (credited_.contains(utxo.outpoint)) continue;
    credited_.insert(utxo.outpoint);
    managed_.push_back(ManagedUtxo{utxo, user});
    ledger_.mint(user, utxo.value);
    minted += utxo.value;
  }
  return {Status::kOk, minted};
}

std::size_t CkBtcMinter::managed_utxo_count() const { return managed_.size(); }

bitcoin::Amount CkBtcMinter::managed_btc() const {
  bitcoin::Amount total = 0;
  for (const auto& m : managed_) total += m.utxo.value;
  return total;
}

RetrieveResult CkBtcMinter::retrieve_btc(const Ledger::Principal& user,
                                         const std::string& btc_address,
                                         bitcoin::Amount amount) {
  RetrieveResult result;
  auto decoded =
      bitcoin::decode_address(btc_address, integration_->canister().params().network);
  if (!decoded || amount <= 0) {
    result.status = Status::kBadAddress;
    return result;
  }
  if (ledger_.balance_of(user) < amount) {
    result.status = Status::kMalformedTransaction;  // insufficient token balance
    return result;
  }

  // Select pooled deposit UTXOs (largest first) to cover the amount; the
  // Bitcoin fee comes out of the withdrawal, as in the real minter.
  std::sort(managed_.begin(), managed_.end(), [](const ManagedUtxo& a, const ManagedUtxo& b) {
    return a.utxo.value > b.utxo.value;
  });
  std::vector<ManagedUtxo> selected;
  bitcoin::Amount selected_value = 0;
  for (const auto& m : managed_) {
    if (selected_value >= amount) break;
    selected.push_back(m);
    selected_value += m.utxo.value;
  }
  constexpr bitcoin::Amount kFeePerVbyte = 2;
  auto fee_for = [&](std::size_t n_inputs) {
    return kFeePerVbyte * static_cast<bitcoin::Amount>(148 * n_inputs + 34 * 2 + 10);
  };
  bitcoin::Amount fee = fee_for(selected.size());
  if (selected_value < amount || amount <= fee) {
    result.status = Status::kMalformedTransaction;  // pool too small / dust
    return result;
  }

  if (!ledger_.burn(user, amount)) {
    result.status = Status::kMalformedTransaction;
    return result;
  }

  bitcoin::Transaction tx;
  for (const auto& m : selected) {
    bitcoin::TxIn in;
    in.prevout = m.utxo.outpoint;
    tx.inputs.push_back(in);
  }
  tx.outputs.push_back(bitcoin::TxOut{amount - fee, bitcoin::script_for_address(*decoded)});
  bitcoin::Amount change = selected_value - amount;
  constexpr bitcoin::Amount kDustLimit = 546;
  // Change returns to the minter's pool (the first selected owner's deposit
  // address keeps the derivation bookkeeping simple).
  if (change >= kDustLimit) {
    tx.outputs.push_back(
        bitcoin::TxOut{change, account_for(selected.front().owner).wallet->script_pubkey()});
  }

  // Batch-sign across the owning deposit wallets: one sign_with_ecdsa_batch
  // call covers every input even though each spends under a different
  // derivation path.
  std::vector<BtcWallet*> input_wallets;
  std::vector<crypto::ThresholdEcdsaService::SignRequest> requests;
  input_wallets.reserve(selected.size());
  requests.reserve(selected.size());
  for (std::size_t i = 0; i < selected.size(); ++i) {
    BtcWallet* wallet = account_for(selected[i].owner).wallet.get();
    input_wallets.push_back(wallet);
    requests.push_back({wallet->input_digest(tx, i), wallet->path()});
  }
  std::vector<crypto::Signature> sigs =
      integration_->subnet().sign_with_ecdsa_batch(requests);
  for (std::size_t i = 0; i < sigs.size(); ++i) {
    input_wallets[i]->apply_input_signature(tx, i, sigs[i]);
  }

  util::Bytes raw = tx.serialize();
  result.status = integration_->canister().send_transaction(raw);
  if (result.status != Status::kOk) {
    ledger_.mint(user, amount);  // refund the burn
    return result;
  }
  result.txid = tx.txid();
  result.amount_sent = amount - fee;
  result.fee = fee;

  // Spent UTXOs leave the pool; the change output re-enters it once it
  // confirms and update_balance scans it (credited_ prevents re-minting
  // because the change was never burned from the pool's accounting — mark
  // it pre-credited).
  std::unordered_set<bitcoin::OutPoint> spent;
  for (const auto& m : selected) spent.insert(m.utxo.outpoint);
  std::erase_if(managed_, [&](const ManagedUtxo& m) { return spent.contains(m.utxo.outpoint); });
  if (change >= kDustLimit) {
    bitcoin::OutPoint change_outpoint{result.txid, 1};
    credited_.insert(change_outpoint);
    managed_.push_back(
        ManagedUtxo{canister::Utxo{change_outpoint, change, 0}, selected.front().owner});
  }
  return result;
}

}  // namespace icbtc::contracts
