// A Bitcoin payroll smart contract (§I): holds a treasury in BTC under a
// threshold key and pays every employee on a schedule driven by canister
// timers — execution triggered by the platform itself, not by users, one of
// the IC capabilities the paper highlights (§II-A).
#pragma once

#include <string>
#include <vector>

#include "contracts/btc_wallet.h"
#include "ic/subnet.h"

namespace icbtc::contracts {

struct Employee {
  std::string name;
  std::string btc_address;
  bitcoin::Amount salary = 0;
};

struct PaydayRecord {
  std::uint64_t round = 0;
  util::Hash256 txid;
  bitcoin::Amount total_paid = 0;
  std::size_t employees_paid = 0;
  bool success = false;
};

class PayrollContract {
 public:
  PayrollContract(canister::BitcoinIntegration& integration, const std::string& payroll_id,
                  std::vector<Employee> employees, int min_confirmations = 6);
  ~PayrollContract();

  const std::string& treasury_address() const { return wallet_.address(); }
  canister::Outcome<bitcoin::Amount> treasury_balance();
  bitcoin::Amount total_salaries() const;
  const std::vector<Employee>& employees() const { return employees_; }
  const std::vector<PaydayRecord>& history() const { return history_; }

  /// Runs one pay cycle immediately: one batched transaction paying every
  /// employee. Fails (recorded in history) if the treasury cannot cover it.
  PaydayRecord run_payday(std::uint64_t round = 0);

  /// Schedules run_payday every `period_rounds` subnet rounds (canister
  /// timer). Call stop() or destroy the contract to cancel.
  void start_schedule(std::uint64_t period_rounds);
  void stop_schedule();

 private:
  canister::BitcoinIntegration* integration_;
  BtcWallet wallet_;
  std::vector<Employee> employees_;
  int min_confirmations_;
  std::vector<PaydayRecord> history_;
  std::size_t heartbeat_id_ = 0;
  bool scheduled_ = false;
};

}  // namespace icbtc::contracts
