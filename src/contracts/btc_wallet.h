// A canister-held Bitcoin wallet: the capability the integration exists to
// provide. The wallet's key is a derivation of the subnet's threshold-ECDSA
// master key (no single party ever holds it), its address is a standard
// P2PKH address, and spending builds a real Bitcoin transaction, signs every
// input with sign_with_ecdsa, and submits it through the Bitcoin canister's
// send_transaction endpoint.
#pragma once

#include <string>
#include <vector>

#include "canister/integration.h"
#include "crypto/threshold_ecdsa.h"

namespace icbtc::contracts {

struct Payment {
  std::string to_address;
  bitcoin::Amount amount = 0;
};

struct SendResult {
  canister::Status status = canister::Status::kOk;
  util::Hash256 txid;
  bitcoin::Amount fee = 0;
  std::size_t inputs_used = 0;
  util::Bytes raw_tx;

  bool ok() const { return status == canister::Status::kOk; }
};

/// The output/signature scheme a wallet uses.
enum class WalletType {
  kP2pkh,  // legacy outputs, threshold-ECDSA signatures
  kP2tr,   // taproot key-path outputs, threshold-Schnorr (BIP-340) signatures
};

class BtcWallet {
 public:
  /// `path` isolates this wallet's key under the subnet master key — each
  /// canister (or user of a canister) gets its own path.
  BtcWallet(canister::BitcoinIntegration& integration, crypto::DerivationPath path,
            WalletType type = WalletType::kP2pkh);

  WalletType type() const { return type_; }
  /// The wallet's address on the integration's network (P2PKH or P2TR).
  const std::string& address() const { return address_; }
  /// The ECDSA public key (P2PKH wallets only; infinity for P2TR wallets).
  const crypto::AffinePoint& public_key() const { return public_key_; }

  /// Balance as seen by the Bitcoin canister.
  canister::Outcome<bitcoin::Amount> balance(int min_confirmations = 1);

  /// All spendable UTXOs (follows pagination to exhaustion).
  canister::Outcome<std::vector<canister::Utxo>> utxos(int min_confirmations = 1);

  /// Builds, threshold-signs, and submits a payment transaction. UTXOs are
  /// selected largest-first; change returns to this wallet. `fee_per_vbyte`
  /// sets the fee rate (satoshi per virtual byte, estimated on the unsigned
  /// size plus signature overhead).
  SendResult send(const std::vector<Payment>& payments, bitcoin::Amount fee_per_vbyte = 2,
                  int min_confirmations = 1);

  /// Threshold-signs input `index` of `tx`, which must spend an output
  /// locked by this wallet's scriptPubKey. Used by contracts that assemble
  /// transactions across several derived wallets (e.g. the ckBTC minter).
  void sign_input(bitcoin::Transaction& tx, std::size_t index);

  /// Threshold-signs every input of `tx` (all of which must spend outputs of
  /// this wallet) in one batched sign_with_ecdsa_batch pass. Taproot wallets
  /// sign serially (Schnorr signing is not batched here).
  void sign_all_inputs(bitcoin::Transaction& tx);

  /// Sighash of input `index` under this wallet's scriptPubKey — the digest
  /// sign_with_ecdsa is asked to sign.
  util::Hash256 input_digest(const bitcoin::Transaction& tx, std::size_t index) const;

  /// Installs a signature obtained for input_digest(tx, index) (ECDSA
  /// wallets only). Lets contracts batch signatures across several wallets
  /// and apply the results per input.
  void apply_input_signature(bitcoin::Transaction& tx, std::size_t index,
                             const crypto::Signature& sig);

  const crypto::DerivationPath& path() const { return path_; }

  const util::Bytes& script_pubkey() const { return script_pubkey_; }

  std::uint64_t signatures_requested() const { return signatures_requested_; }

 private:
  canister::BitcoinIntegration* integration_;
  crypto::DerivationPath path_;
  WalletType type_;
  crypto::AffinePoint public_key_;        // ECDSA key (P2PKH)
  crypto::XOnlyPublicKey schnorr_key_{};  // x-only key (P2TR)
  util::Bytes pubkey_bytes_;
  util::Bytes script_pubkey_;
  std::string address_;
  std::uint64_t signatures_requested_ = 0;
};

}  // namespace icbtc::contracts
