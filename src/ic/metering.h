// Instruction metering, the IC execution layer's accounting unit. The
// paper's Figures 6 and 7 report WebAssembly instruction counts for block
// ingestion and request handling; canister code in this simulation charges
// the meter the way the deterministic execution layer counts instructions.
#pragma once

#include <cstdint>

namespace icbtc::ic {

class InstructionMeter {
 public:
  void charge(std::uint64_t instructions) { count_ += instructions; }
  std::uint64_t count() const { return count_; }
  void reset() { count_ = 0; }

  /// Scoped helper: measures the instructions charged between construction
  /// and sample().
  class Segment {
   public:
    explicit Segment(const InstructionMeter& meter)
        : meter_(&meter), start_(meter.count()) {}
    std::uint64_t sample() const { return meter_->count() - start_; }

   private:
    const InstructionMeter* meter_;
    std::uint64_t start_;
  };

 private:
  std::uint64_t count_ = 0;
};

/// Cycles cost model (the IC's fee unit; 1 XDR = 1e12 cycles).
struct CycleCostModel {
  std::uint64_t update_base = 15'000'000;     // per replicated call (ingress + xnet)
  std::uint64_t query_base = 0;               // queries are free on the IC
  double per_instruction = 0.4;               // cycles per executed instruction
  std::uint64_t per_response_byte = 25'000;   // certified response bytes
  double usd_per_trillion_cycles = 1.33;      // 1T cycles = 1 XDR ≈ 1.33 USD

  std::uint64_t update_cost_cycles(std::uint64_t instructions,
                                   std::uint64_t response_bytes) const {
    return update_base + static_cast<std::uint64_t>(per_instruction * static_cast<double>(instructions)) +
           per_response_byte * response_bytes;
  }

  double cycles_to_usd(std::uint64_t cycles) const {
    return static_cast<double>(cycles) * usd_per_trillion_cycles / 1e12;
  }
};

}  // namespace icbtc::ic
