// Simulated Internet Computer subnet: blockchain-based state machine
// replication with rotating, unpredictable block makers and deterministic
// finalization (§II-A). Because execution is deterministic, honest replicas
// hold identical canister state, so the simulation executes canisters once
// per subnet while modelling the *consensus-visible* behaviour per replica:
// which node makes each block (Byzantine makers can pick the payload, the
// crux of Lemma IV.3), round timing, and latency/cost of calls.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "crypto/threshold_ecdsa.h"
#include "crypto/threshold_schnorr.h"
#include "ic/metering.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "util/rng.h"
#include "util/sim.h"

namespace icbtc::ic {

struct SubnetConfig {
  std::uint32_t num_nodes = 13;      // n = 3f+1
  std::uint32_t num_byzantine = 0;   // actually corrupted nodes (< n/3 assumed)
  util::SimTime round_interval = util::kSecond;
  double round_jitter = 0.15;  // fractional jitter on round duration

  // Replicated (update) call latency components, calibrated to the paper's
  // mainnet measurements (min ~7s, mean <10s, p90 ~18s for cross-subnet
  // calls to the Bitcoin canister).
  util::SimTime update_base_latency = 4 * util::kSecond;   // ingress + xnet routing
  std::uint32_t update_rounds = 3;                          // induction..certification
  double update_latency_jitter = 0.6;                       // long-tailed share

  // Query latency: single-replica execution, no consensus.
  util::SimTime query_base_latency = 120 * util::kMillisecond;  // network + scheduling
  /// Simulated per-instruction execution time (ns) — drives the response-size
  /// dependence in Fig. 7.
  double ns_per_instruction = 1.2;

  CycleCostModel cost_model;

  // Offline threshold-ECDSA presignature pool, mirroring the IC: quadruples
  // are precomputed between rounds so sign_with_ecdsa only pays the online
  // phase. Depth 0 disables precomputation (every request deals online);
  // the pool refills once the stock reaches the low watermark.
  std::size_t ecdsa_presig_depth = 16;
  std::size_t ecdsa_presig_low_watermark = 4;

  std::uint32_t max_faulty() const { return (num_nodes - 1) / 3; }
  /// Threshold for tECDSA and certification: 2f+1.
  std::uint32_t threshold() const { return 2 * max_faulty() + 1; }
};

/// Per-round information passed to canister heartbeats.
struct RoundInfo {
  std::uint64_t round = 0;
  std::uint32_t block_maker = 0;
  bool block_maker_byzantine = false;
  util::SimTime time = 0;
};

class Subnet {
 public:
  Subnet(util::Simulation& sim, SubnetConfig config, std::uint64_t seed);

  const SubnetConfig& config() const { return config_; }
  util::Simulation& sim() { return *sim_; }

  /// Starts the round loop.
  void start();
  void stop();

  std::uint64_t round() const { return round_; }
  std::uint32_t current_block_maker() const { return block_maker_; }
  bool node_is_byzantine(std::uint32_t node) const;
  bool current_maker_is_byzantine() const { return node_is_byzantine(block_maker_); }

  /// Registers a per-round callback (canister heartbeats / timers). Returns
  /// an id usable with unregister_heartbeat.
  std::size_t register_heartbeat(std::function<void(const RoundInfo&)> fn);
  void unregister_heartbeat(std::size_t id);

  /// Latency samples for the two call flavours. Instructions influence query
  /// latency directly (single replica executes synchronously); update
  /// latency is dominated by consensus rounds.
  util::SimTime sample_update_latency(std::uint64_t instructions);
  util::SimTime sample_query_latency(std::uint64_t instructions);

  /// The subnet's threshold-ECDSA service (t = 2f+1 of n), as exposed to
  /// canisters through the management canister API.
  crypto::ThresholdEcdsaService& ecdsa() { return ecdsa_; }

  /// Signs with a quorum of honest replicas; models the extra consensus
  /// latency of the signing protocol via `sample_signing_latency`.
  crypto::Signature sign_with_ecdsa(const util::Hash256& digest,
                                    const crypto::DerivationPath& path);

  /// Signs every pending request of a round in one pass (shared Lagrange
  /// coefficients, batched verification); element i corresponds to request
  /// i. One signing-latency sample covers the whole batch — the batch rides
  /// a single signing round, which is the point of batching.
  std::vector<crypto::Signature> sign_with_ecdsa_batch(
      const std::vector<crypto::ThresholdEcdsaService::SignRequest>& requests);

  util::SimTime sample_signing_latency();

  /// The subnet's threshold-Schnorr service (BIP-340), the second signing
  /// protocol canisters can use (for taproot outputs).
  crypto::ThresholdSchnorrService& schnorr() { return schnorr_; }
  crypto::SchnorrSignature sign_with_schnorr(const util::Hash256& message,
                                             const crypto::SchnorrDerivationPath& path);

  /// Number of rounds in which a Byzantine node was block maker.
  std::uint64_t byzantine_maker_rounds() const { return byzantine_maker_rounds_; }

  /// Attaches a metrics registry (nullptr detaches):
  ///   ic.rounds                  counter — consensus rounds dispatched
  ///   ic.byzantine_maker_rounds  counter — rounds with a Byzantine maker
  ///   ic.heartbeats              gauge   — registered heartbeat callbacks
  ///   ic.round_gap_us            histogram — gap between round dispatches
  void set_metrics(obs::MetricsRegistry* registry);

  /// Attaches an SLO tracker (nullptr detaches): each round records the
  /// simulated-time gap since the previous round into "ic.round_dispatch" —
  /// the cadence SLO (a round that fires late is a saturated subnet).
  void set_slo(obs::SloTracker* slo);

 private:
  void run_round();
  void schedule_next_round();
  /// First 2f+1 honest replica indices (1-based), the signing quorum. Throws
  /// std::runtime_error when fewer than 2f+1 nodes are honest.
  std::vector<std::uint32_t> honest_signing_quorum() const;

  util::Simulation* sim_;
  SubnetConfig config_;
  util::Rng rng_;
  crypto::ThresholdEcdsaService ecdsa_;
  crypto::ThresholdSchnorrService schnorr_;

  std::uint64_t round_ = 0;
  std::uint32_t block_maker_ = 0;
  std::vector<bool> byzantine_;
  bool running_ = false;
  util::EventHandle pending_{};
  std::uint64_t byzantine_maker_rounds_ = 0;

  std::vector<std::pair<std::size_t, std::function<void(const RoundInfo&)>>> heartbeats_;
  std::size_t next_heartbeat_id_ = 1;

  struct Metrics {
    obs::Counter* rounds = nullptr;
    obs::Counter* byzantine_maker_rounds = nullptr;
    obs::Gauge* heartbeats = nullptr;
    obs::Histogram* round_gap_us = nullptr;
  };
  Metrics metrics_;
  obs::SloTracker::Endpoint* slo_rounds_ = nullptr;
  util::SimTime last_round_time_ = -1;
};

}  // namespace icbtc::ic
