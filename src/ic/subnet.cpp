#include "ic/subnet.h"

#include <algorithm>
#include <stdexcept>

#include "crypto/presig_pool.h"

namespace icbtc::ic {

namespace {
crypto::ThresholdEcdsaServiceConfig ecdsa_service_config(const SubnetConfig& config) {
  crypto::ThresholdEcdsaServiceConfig ec;
  ec.pool_depth = config.ecdsa_presig_depth;
  ec.pool_low_watermark = config.ecdsa_presig_low_watermark;
  return ec;
}
}  // namespace

Subnet::Subnet(util::Simulation& sim, SubnetConfig config, std::uint64_t seed)
    : sim_(&sim),
      config_(config),
      rng_(seed),
      ecdsa_(config.threshold(), config.num_nodes, seed ^ 0xecd5a5eedULL,
             ecdsa_service_config(config)),
      schnorr_(config.threshold(), config.num_nodes, seed ^ 0x5c40044bb1ULL) {
  if (config_.num_nodes == 0) throw std::invalid_argument("Subnet: need nodes");
  if (config_.num_byzantine >= config_.num_nodes) {
    throw std::invalid_argument("Subnet: too many byzantine nodes");
  }
  byzantine_.assign(config_.num_nodes, false);
  // Corrupt a uniformly random subset (positions do not matter but this way
  // node index carries no meaning).
  auto corrupted = rng_.sample_indices(config_.num_nodes, config_.num_byzantine);
  for (auto i : corrupted) byzantine_[i] = true;
  block_maker_ = static_cast<std::uint32_t>(rng_.next_below(config_.num_nodes));
  // Prefill the presignature pool: the offline phase runs before any signing
  // demand, as it would between consensus rounds on the IC.
  ecdsa_.pool().refill();
}

bool Subnet::node_is_byzantine(std::uint32_t node) const {
  return node < byzantine_.size() && byzantine_[node];
}

void Subnet::start() {
  if (running_) return;
  running_ = true;
  schedule_next_round();
}

void Subnet::stop() {
  running_ = false;
  sim_->cancel(pending_);
  pending_ = {};
}

void Subnet::schedule_next_round() {
  double jitter = 1.0 + config_.round_jitter * (2.0 * rng_.next_double() - 1.0);
  auto delay = static_cast<util::SimTime>(static_cast<double>(config_.round_interval) * jitter);
  pending_ = sim_->schedule(delay, [this] { run_round(); });
}

void Subnet::run_round() {
  if (!running_) return;
  ++round_;
  // The IC's random beacon makes the block maker unpredictable; model it as
  // a fresh uniform draw each round.
  block_maker_ = static_cast<std::uint32_t>(rng_.next_below(config_.num_nodes));
  if (node_is_byzantine(block_maker_)) ++byzantine_maker_rounds_;

  util::SimTime now = sim_->now();
  std::uint64_t gap_us = last_round_time_ >= 0
                             ? static_cast<std::uint64_t>(now - last_round_time_)
                             : static_cast<std::uint64_t>(config_.round_interval);
  last_round_time_ = now;
  if (metrics_.rounds != nullptr) {
    metrics_.rounds->inc();
    if (node_is_byzantine(block_maker_)) metrics_.byzantine_maker_rounds->inc();
    metrics_.round_gap_us->observe(static_cast<double>(gap_us));
  }
  if (slo_rounds_ != nullptr) slo_rounds_->record(gap_us);

  RoundInfo info;
  info.round = round_;
  info.block_maker = block_maker_;
  info.block_maker_byzantine = node_is_byzantine(block_maker_);
  info.time = sim_->now();
  // Copy: heartbeats may register/unregister during iteration.
  auto callbacks = heartbeats_;
  for (auto& [id, fn] : callbacks) fn(info);
  schedule_next_round();
}

std::size_t Subnet::register_heartbeat(std::function<void(const RoundInfo&)> fn) {
  std::size_t id = next_heartbeat_id_++;
  heartbeats_.emplace_back(id, std::move(fn));
  if (metrics_.heartbeats != nullptr) {
    metrics_.heartbeats->set(static_cast<std::int64_t>(heartbeats_.size()));
  }
  return id;
}

void Subnet::unregister_heartbeat(std::size_t id) {
  std::erase_if(heartbeats_, [id](const auto& entry) { return entry.first == id; });
  if (metrics_.heartbeats != nullptr) {
    metrics_.heartbeats->set(static_cast<std::int64_t>(heartbeats_.size()));
  }
}

void Subnet::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    metrics_ = Metrics{};
    return;
  }
  metrics_.rounds = &registry->counter("ic.rounds");
  metrics_.byzantine_maker_rounds = &registry->counter("ic.byzantine_maker_rounds");
  metrics_.heartbeats = &registry->gauge("ic.heartbeats");
  metrics_.round_gap_us = &registry->histogram(
      "ic.round_gap_us", obs::Histogram::decade_bounds(1e3, 1e8));
  metrics_.heartbeats->set(static_cast<std::int64_t>(heartbeats_.size()));
}

void Subnet::set_slo(obs::SloTracker* slo) {
  slo_rounds_ = slo == nullptr ? nullptr : &slo->endpoint("ic.round_dispatch");
}

util::SimTime Subnet::sample_update_latency(std::uint64_t instructions) {
  // Consensus-dominated: base (ingress + cross-subnet routing) plus a few
  // rounds, plus a long-tailed component; execution time itself is minor but
  // large responses add certification work.
  double rounds = static_cast<double>(config_.update_rounds) *
                  static_cast<double>(config_.round_interval);
  double exec_ns = config_.ns_per_instruction * static_cast<double>(instructions);
  double base = static_cast<double>(config_.update_base_latency) + rounds +
                exec_ns / 1000.0;  // ns -> us
  // Long tail: exponential surcharge (retries, queueing, xnet batching).
  double tail = rng_.next_exponential(config_.update_latency_jitter * base);
  return static_cast<util::SimTime>(base + tail);
}

util::SimTime Subnet::sample_query_latency(std::uint64_t instructions) {
  double exec_ns = config_.ns_per_instruction * static_cast<double>(instructions);
  double base = static_cast<double>(config_.query_base_latency) + exec_ns / 1000.0;
  double jitter = rng_.next_exponential(0.25 * base);
  return static_cast<util::SimTime>(base + jitter);
}

util::SimTime Subnet::sample_signing_latency() {
  // Threshold signing needs additional consensus rounds to agree on the
  // presignature and deliver shares.
  double base = 2.0 * static_cast<double>(config_.round_interval);
  double tail = rng_.next_exponential(0.5 * base);
  return static_cast<util::SimTime>(base + tail);
}

crypto::SchnorrSignature Subnet::sign_with_schnorr(const util::Hash256& message,
                                                   const crypto::SchnorrDerivationPath& path) {
  std::vector<std::uint32_t> participants;
  for (std::uint32_t i = 0; i < config_.num_nodes && participants.size() < config_.threshold();
       ++i) {
    if (!byzantine_[i]) participants.push_back(i + 1);
  }
  if (participants.size() < config_.threshold()) {
    throw std::runtime_error("sign_with_schnorr: not enough honest replicas");
  }
  return schnorr_.sign(message, path, participants);
}

std::vector<std::uint32_t> Subnet::honest_signing_quorum() const {
  // Honest replicas suffice: 2f+1 <= number of honest nodes.
  std::vector<std::uint32_t> participants;
  for (std::uint32_t i = 0; i < config_.num_nodes && participants.size() < config_.threshold();
       ++i) {
    if (!byzantine_[i]) participants.push_back(i + 1);  // tECDSA indices are 1-based
  }
  if (participants.size() < config_.threshold()) {
    throw std::runtime_error("sign_with_ecdsa: not enough honest replicas");
  }
  return participants;
}

crypto::Signature Subnet::sign_with_ecdsa(const util::Hash256& digest,
                                          const crypto::DerivationPath& path) {
  return ecdsa_.sign(digest, path, honest_signing_quorum());
}

std::vector<crypto::Signature> Subnet::sign_with_ecdsa_batch(
    const std::vector<crypto::ThresholdEcdsaService::SignRequest>& requests) {
  return ecdsa_.sign_batch(requests, honest_signing_quorum());
}

}  // namespace icbtc::ic
