// Deterministic serializers for Tracer contents.
//
// Two formats:
//  - to_trace_json: our own trace-record schema — one record per trace with
//    the span tree nested parent→children, plus per-request cost records and
//    the flight-recorder tail. This is the machine-readable artifact the
//    benches and tests diff byte-for-byte.
//  - to_chrome_trace: Chrome trace-event JSON ("X" complete events, "i"
//    instants, "M" thread-name metadata) loadable in chrome://tracing and
//    Perfetto. Span categories map to tracks (tid = deterministic category
//    index) so the canister/adapter/btcnet layers render as separate rows.
//
// Both outputs are pure functions of the tracer's recorded state: same
// spans/events/records in, same bytes out.
#pragma once

#include <string>

#include "obs/trace.h"

namespace icbtc::obs {

/// Full structured dump: {"traces":[...],"requests":[...],"events":[...],
/// "dropped_spans":N}. Spans nest under their parents; children are ordered
/// by begin seq; orphans (parent dropped/still open) surface as trace roots.
std::string to_trace_json(const Tracer& tracer);

/// Chrome trace-event format: {"traceEvents":[...]}.
std::string to_chrome_trace(const Tracer& tracer);

/// Human-readable flight-recorder dump (one line per event, oldest first) —
/// what `fork_monitor --trace` prints when it spots a fork.
std::string flight_recorder_text(const Tracer& tracer);

}  // namespace icbtc::obs
