#include "obs/trace.h"

#include <algorithm>

#include "obs/json_detail.h"

namespace icbtc::obs {

const char* to_string(Severity s) {
  switch (s) {
    case Severity::kDebug: return "debug";
    case Severity::kInfo: return "info";
    case Severity::kWarn: return "warn";
    case Severity::kError: return "error";
  }
  return "unknown";
}

Tracer::Tracer(TracerConfig config) : config_(config) {
  finished_.reserve(std::min<std::size_t>(config_.max_spans, 4096));
}

SpanContext Tracer::begin_span(std::string_view name, std::string_view category,
                               SpanContext parent) {
  if (!parent.valid()) parent = current();

  SpanRecord record;
  record.span_id = next_span_id_++;
  record.seq = next_seq_++;
  if (parent.valid()) {
    record.trace_id = parent.trace_id;
    record.parent_id = parent.span_id;
  } else {
    record.trace_id = next_trace_id_++;
  }
  record.name.assign(name);
  record.category.assign(category);
  record.start = now();
  record.end = record.start;

  SpanContext context{record.trace_id, record.span_id};
  open_.emplace(record.span_id, std::move(record));
  return context;
}

void Tracer::end_span(SpanContext context) { end_span_at(context, now()); }

void Tracer::end_span_at(SpanContext context, TraceTime at) {
  auto it = open_.find(context.span_id);
  if (it == open_.end()) return;
  SpanRecord record = std::move(it->second);
  open_.erase(it);
  record.end = std::max(at, record.start);

  // Slow-op watchdog: per-category budget wins over the default.
  TraceTime budget = config_.slow_span_budget;
  for (const auto& [category, b] : category_budgets_) {
    if (category == record.category) {
      budget = b;
      break;
    }
  }
  if (budget > 0 && record.duration() > budget) {
    event(Severity::kWarn, "slow_span",
          record.name + " took " + std::to_string(record.duration()) + "us (budget " +
              std::to_string(budget) + "us)",
          context);
  }

  finish(std::move(record));
}

void Tracer::finish(SpanRecord&& record) {
  if (finished_.size() >= config_.max_spans) {
    ++dropped_spans_;
    return;
  }
  finished_.push_back(std::move(record));
}

void Tracer::render_attr(SpanRecord& record, std::string_view key, std::string value) {
  // Last write wins, so repeated sets don't duplicate keys in the export.
  for (auto& [k, v] : record.attrs) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  record.attrs.emplace_back(std::string(key), std::move(value));
}

void Tracer::attr_int(SpanContext context, std::string_view key, std::int64_t value) {
  auto it = open_.find(context.span_id);
  if (it == open_.end()) return;
  render_attr(it->second, key, std::to_string(value));
}

void Tracer::attr_uint(SpanContext context, std::string_view key, std::uint64_t value) {
  auto it = open_.find(context.span_id);
  if (it == open_.end()) return;
  render_attr(it->second, key, std::to_string(value));
}

void Tracer::attr_double(SpanContext context, std::string_view key, double value) {
  auto it = open_.find(context.span_id);
  if (it == open_.end()) return;
  render_attr(it->second, key, detail::format_double(value));
}

void Tracer::attr_str(SpanContext context, std::string_view key, std::string_view value) {
  auto it = open_.find(context.span_id);
  if (it == open_.end()) return;
  render_attr(it->second, key, "\"" + detail::json_escape(std::string(value)) + "\"");
}

SpanContext Tracer::current() const {
  return stack_.empty() ? SpanContext{} : stack_.back();
}

void Tracer::pop_current() {
  if (!stack_.empty()) stack_.pop_back();
}

void Tracer::event(Severity severity, std::string_view name, std::string_view detail,
                   SpanContext context) {
  if (config_.event_capacity == 0) return;
  if (!context.valid()) context = current();

  TraceEvent e;
  e.seq = next_event_seq_++;
  e.time = now();
  e.severity = severity;
  e.trace_id = context.trace_id;
  e.span_id = context.span_id;
  e.name.assign(name);
  e.detail.assign(detail);

  if (ring_.size() < config_.event_capacity) {
    ring_.push_back(std::move(e));
  } else {
    ring_[e.seq % config_.event_capacity] = std::move(e);
  }
}

void Tracer::set_slow_budget(std::string_view category, TraceTime budget) {
  for (auto& [c, b] : category_budgets_) {
    if (c == category) {
      b = budget;
      return;
    }
  }
  category_budgets_.emplace_back(std::string(category), budget);
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out(ring_);
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) { return a.seq < b.seq; });
  return out;
}

void Tracer::clear() {
  open_.clear();
  stack_.clear();
  finished_.clear();
  ring_.clear();
  request_costs_.clear();
  dropped_spans_ = 0;
  next_event_seq_ = 0;
}

// ------------------------------- ScopedSpan -------------------------------

ScopedSpan::ScopedSpan(Tracer* tracer, std::string_view name, std::string_view category,
                       SpanContext parent)
    : tracer_(tracer) {
  if (!tracer_) {
    ended_ = true;
    return;
  }
  context_ = tracer_->begin_span(name, category, parent);
  start_ = tracer_->now();
  tracer_->push_current(context_);
}

void ScopedSpan::attr(std::string_view key, std::int64_t value) {
  if (active()) tracer_->attr_int(context_, key, value);
}

void ScopedSpan::attr(std::string_view key, std::uint64_t value) {
  if (active()) tracer_->attr_uint(context_, key, value);
}

void ScopedSpan::attr(std::string_view key, double value) {
  if (active()) tracer_->attr_double(context_, key, value);
}

void ScopedSpan::attr(std::string_view key, std::string_view value) {
  if (active()) tracer_->attr_str(context_, key, value);
}

void ScopedSpan::event(Severity severity, std::string_view name, std::string_view detail) {
  if (active()) tracer_->event(severity, name, detail, context_);
}

void ScopedSpan::end() {
  if (!active()) return;
  ended_ = true;
  tracer_->pop_current();
  tracer_->end_span(context_);
}

void ScopedSpan::end_at(TraceTime at) {
  if (!active()) return;
  ended_ = true;
  tracer_->pop_current();
  tracer_->end_span_at(context_, at);
}

// ----------------------------- TraceTaskGroup -----------------------------

TraceTaskGroup::TraceTaskGroup(Tracer* tracer, std::string_view name,
                               std::string_view category, std::size_t tasks)
    : tracer_(tracer) {
  if (!tracer_ || tasks == 0) {
    joined_ = true;
    return;
  }
  // Pre-allocate ids and timestamps on the submitting thread so the exported
  // records are independent of which worker ran which task and when.
  SpanContext parent = tracer_->current();
  TraceTime at = tracer_->now();
  slots_.resize(tasks);
  for (std::size_t i = 0; i < tasks; ++i) {
    SpanRecord& record = slots_[i].record;
    record.span_id = tracer_->next_span_id_++;
    record.seq = tracer_->next_seq_++;
    if (parent.valid()) {
      record.trace_id = parent.trace_id;
      record.parent_id = parent.span_id;
    } else {
      record.trace_id = tracer_->next_trace_id_++;
    }
    record.name = std::string(name) + "[" + std::to_string(i) + "]";
    record.category.assign(category);
    record.start = at;
    record.end = at;
  }
}

void TraceTaskGroup::record(std::size_t i) {
  if (i < slots_.size()) slots_[i].recorded = true;
}

void TraceTaskGroup::record(
    std::size_t i, std::initializer_list<std::pair<std::string_view, std::uint64_t>> attrs) {
  if (i >= slots_.size()) return;
  Slot& slot = slots_[i];
  slot.recorded = true;
  for (const auto& [key, value] : attrs) {
    Tracer::render_attr(slot.record, key, std::to_string(value));
  }
}

void TraceTaskGroup::join() {
  if (joined_) return;
  joined_ = true;
  for (Slot& slot : slots_) {
    if (!slot.recorded) continue;
    tracer_->finish(std::move(slot.record));
  }
  slots_.clear();
}

}  // namespace icbtc::obs
