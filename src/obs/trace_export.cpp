#include "obs/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <unordered_map>
#include <vector>

#include "obs/json_detail.h"

namespace icbtc::obs {
namespace {

using detail::json_escape;

std::string quoted(const std::string& s) { return "\"" + json_escape(s) + "\""; }

void append_attrs(std::string& out, const SpanRecord& span) {
  out += "\"attrs\":{";
  bool first = true;
  for (const auto& [key, value] : span.attrs) {
    if (!first) out += ",";
    first = false;
    out += quoted(key) + ":" + value;  // values are pre-rendered JSON
  }
  out += "}";
}

struct SpanIndex {
  // Children (as indices into the tracer's finished_spans) keyed by parent
  // span id, each list ordered by begin seq.
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> children;
  // Roots per trace: spans whose parent is 0 or wasn't retained.
  std::map<std::uint64_t, std::vector<std::size_t>> trace_roots;
};

SpanIndex build_index(const std::vector<SpanRecord>& spans) {
  SpanIndex index;
  std::unordered_map<std::uint64_t, std::size_t> by_id;
  by_id.reserve(spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) by_id.emplace(spans[i].span_id, i);
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& span = spans[i];
    if (span.parent_id != 0 && by_id.count(span.parent_id)) {
      index.children[span.parent_id].push_back(i);
    } else {
      index.trace_roots[span.trace_id].push_back(i);
    }
  }
  auto by_seq = [&spans](std::size_t a, std::size_t b) {
    return spans[a].seq < spans[b].seq;
  };
  for (auto& [_, list] : index.children) std::sort(list.begin(), list.end(), by_seq);
  for (auto& [_, list] : index.trace_roots) std::sort(list.begin(), list.end(), by_seq);
  return index;
}

void append_span_tree(std::string& out, const std::vector<SpanRecord>& spans,
                      const SpanIndex& index, std::size_t i) {
  const SpanRecord& span = spans[i];
  out += "{\"span_id\":" + std::to_string(span.span_id);
  out += ",\"name\":" + quoted(span.name);
  out += ",\"category\":" + quoted(span.category);
  out += ",\"start_us\":" + std::to_string(span.start);
  out += ",\"end_us\":" + std::to_string(span.end);
  out += ",\"duration_us\":" + std::to_string(span.duration());
  out += ",";
  append_attrs(out, span);
  out += ",\"children\":[";
  auto it = index.children.find(span.span_id);
  if (it != index.children.end()) {
    bool first = true;
    for (std::size_t child : it->second) {
      if (!first) out += ",";
      first = false;
      append_span_tree(out, spans, index, child);
    }
  }
  out += "]}";
}

}  // namespace

std::string to_trace_json(const Tracer& tracer) {
  const std::vector<SpanRecord>& spans = tracer.finished_spans();
  SpanIndex index = build_index(spans);

  std::string out;
  out.reserve(4096 + spans.size() * 192);
  out += "{\"traces\":[";
  bool first_trace = true;
  for (const auto& [trace_id, roots] : index.trace_roots) {
    if (!first_trace) out += ",";
    first_trace = false;
    out += "{\"trace_id\":" + std::to_string(trace_id) + ",\"spans\":[";
    bool first_root = true;
    for (std::size_t root : roots) {
      if (!first_root) out += ",";
      first_root = false;
      append_span_tree(out, spans, index, root);
    }
    out += "]}";
  }
  out += "],\"requests\":[";
  bool first_request = true;
  for (const RequestCostRecord& r : tracer.request_costs()) {
    if (!first_request) out += ",";
    first_request = false;
    out += "{\"endpoint\":" + quoted(r.endpoint);
    out += ",\"trace_id\":" + std::to_string(r.trace_id);
    out += ",\"latency_us\":" + std::to_string(r.latency_us);
    out += ",\"instructions\":" + std::to_string(r.instructions);
    out += ",\"response_bytes\":" + std::to_string(r.response_bytes);
    out += ",\"cycles\":" + std::to_string(r.cycles);
    out += "}";
  }
  out += "],\"events\":[";
  bool first_event = true;
  for (const TraceEvent& e : tracer.events()) {
    if (!first_event) out += ",";
    first_event = false;
    out += "{\"seq\":" + std::to_string(e.seq);
    out += ",\"time_us\":" + std::to_string(e.time);
    out += ",\"severity\":\"" + std::string(to_string(e.severity)) + "\"";
    out += ",\"trace_id\":" + std::to_string(e.trace_id);
    out += ",\"span_id\":" + std::to_string(e.span_id);
    out += ",\"name\":" + quoted(e.name);
    out += ",\"detail\":" + quoted(e.detail);
    out += "}";
  }
  out += "],\"dropped_spans\":" + std::to_string(tracer.dropped_spans());
  out += "}";
  return out;
}

std::string to_chrome_trace(const Tracer& tracer) {
  const std::vector<SpanRecord>& spans = tracer.finished_spans();

  // tid = index of the category in sorted order, so track assignment is a
  // pure function of the set of categories present.
  std::map<std::string, int> category_tid;
  for (const SpanRecord& span : spans) category_tid.emplace(span.category, 0);
  int next_tid = 1;
  for (auto& [_, tid] : category_tid) tid = next_tid++;

  std::string out;
  out.reserve(4096 + spans.size() * 160);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (const auto& [category, tid] : category_tid) {
    if (!first) out += ",";
    first = false;
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(tid);
    out += ",\"name\":\"thread_name\",\"args\":{\"name\":" + quoted(category) + "}}";
  }
  for (const SpanRecord& span : spans) {
    if (!first) out += ",";
    first = false;
    out += "{\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(category_tid[span.category]);
    out += ",\"name\":" + quoted(span.name);
    out += ",\"cat\":" + quoted(span.category);
    out += ",\"ts\":" + std::to_string(span.start);
    out += ",\"dur\":" + std::to_string(span.duration());
    out += ",\"args\":{\"trace_id\":" + std::to_string(span.trace_id);
    out += ",\"span_id\":" + std::to_string(span.span_id);
    for (const auto& [key, value] : span.attrs) {
      out += "," + quoted(key) + ":" + value;
    }
    out += "}}";
  }
  for (const TraceEvent& e : tracer.events()) {
    if (!first) out += ",";
    first = false;
    out += "{\"ph\":\"i\",\"pid\":1,\"tid\":0,\"s\":\"g\"";
    out += ",\"name\":" + quoted(e.name);
    out += ",\"cat\":\"" + std::string(to_string(e.severity)) + "\"";
    out += ",\"ts\":" + std::to_string(e.time);
    out += ",\"args\":{\"detail\":" + quoted(e.detail);
    out += ",\"trace_id\":" + std::to_string(e.trace_id) + "}}";
  }
  out += "]}";
  return out;
}

std::string flight_recorder_text(const Tracer& tracer) {
  std::string out;
  for (const TraceEvent& e : tracer.events()) {
    char head[96];
    std::snprintf(head, sizeof(head), "[%10lld us] %-5s ", static_cast<long long>(e.time),
                  to_string(e.severity));
    out += head;
    out += e.name;
    if (!e.detail.empty()) {
      out += ": ";
      out += e.detail;
    }
    if (e.span_id != 0) {
      out += " (trace " + std::to_string(e.trace_id) + ", span " + std::to_string(e.span_id) +
             ")";
    }
    out += "\n";
  }
  if (out.empty()) out = "(flight recorder empty)\n";
  return out;
}

}  // namespace icbtc::obs
