// SLO observability layer (the tail-latency side of §IV-B): an HDR-style
// log-bucketed latency histogram with *fixed* bucket boundaries, and a
// per-endpoint SloTracker holding p50/p99/p999 gauges, target thresholds,
// and error-budget burn counters.
//
// Why fixed boundaries: the bucket an observation lands in is a pure
// function of its value — independent of what was observed before it, of
// the thread that recorded it, and of any configuration. Two histograms fed
// disjoint shards of one latency stream therefore merge() into exactly the
// histogram the combined stream would have produced: quantiles never drift
// under sharding, and exports are byte-identical across seeded runs. This
// is the property that lets per-replica / per-shard trackers combine into
// one subnet-wide SLO picture (and lets bench_load gate on deterministic
// BENCH_load.json bytes).
//
// Bucketing scheme (value domain: unsigned microseconds):
//   - values < 2^kSubBits are exact (one bucket per value);
//   - above that, each power-of-two octave is split into 2^(kSubBits-1)
//     equal sub-buckets, so the relative bucket width — and therefore the
//     worst-case quantile error — is bounded by 2^(1-kSubBits) (~3% at the
//     default 6 sub-bucket bits), uniformly across the whole 64-bit range.
//
// Thread safety: record()/merge() and the accessors take an internal mutex,
// so a tracker may be hammered from parallel::ThreadPool workers (exercised
// by the TSan hammer test). Snapshots are exact once writers quiesce.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace icbtc::obs {

/// Fixed-boundary log-bucketed histogram for latency values in microseconds.
class LatencyHistogram {
 public:
  /// Sub-bucket resolution: 2^kSubBits exact values, then 2^(kSubBits-1)
  /// sub-buckets per octave. 6 bits bounds quantile error at ~3.2%.
  static constexpr unsigned kSubBits = 6;
  static constexpr std::uint64_t kSubBuckets = 1ULL << kSubBits;
  /// Total bucket count for the full 64-bit value domain.
  static constexpr std::size_t kBucketCount =
      static_cast<std::size_t>(kSubBuckets) + (64 - kSubBits) * (kSubBuckets / 2);

  /// Bucket index for `value` — a pure function, identical in every
  /// histogram instance (the "fixed boundaries" contract).
  static std::size_t bucket_index(std::uint64_t value);
  /// Inclusive lower bound of bucket `index`.
  static std::uint64_t bucket_lower(std::size_t index);
  /// Inclusive upper bound of bucket `index`.
  static std::uint64_t bucket_upper(std::size_t index);

  LatencyHistogram();

  void record(std::uint64_t value_us);

  /// Exact merge: adds the other histogram's buckets and summary into this
  /// one. Because boundaries are fixed, the result is bucket-for-bucket
  /// identical to a single histogram that observed both streams.
  void merge(const LatencyHistogram& other);

  /// Resets to the empty state (used by SloTracker window rolls).
  void reset();

  std::uint64_t count() const;
  std::uint64_t sum() const;
  std::uint64_t min() const;  // 0 when empty
  std::uint64_t max() const;
  double mean() const;

  /// q-quantile (q in [0,1]) as the midpoint of the bucket holding the
  /// target rank, clamped to the observed [min, max]. Deterministic: a pure
  /// function of the recorded multiset. Empty histogram returns 0.
  std::uint64_t quantile(double q) const;

  /// Number of recorded values strictly greater than `threshold_us`
  /// resolvable at bucket granularity (counts whole buckets whose lower
  /// bound exceeds the threshold; the threshold's own bucket is excluded).
  std::uint64_t count_above(std::uint64_t threshold_us) const;

  /// Sparse snapshot of the non-empty buckets, ascending by bound.
  struct Bucket {
    std::uint64_t lower = 0;
    std::uint64_t upper = 0;
    std::uint64_t count = 0;
  };
  std::vector<Bucket> nonzero_buckets() const;

 private:
  std::uint64_t quantile_locked(double q) const;

  mutable std::mutex mu_;
  std::vector<std::uint64_t> buckets_;  // kBucketCount entries
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

/// Per-endpoint latency / availability objectives. Zero disables a bound.
struct SloTarget {
  std::uint64_t p50_us = 0;
  std::uint64_t p99_us = 0;
  std::uint64_t p999_us = 0;
  /// Error budget: tolerated fraction of bad requests (errors or requests
  /// slower than p99_us) per window. 0.001 = "99.9% of requests good".
  double error_budget = 0.001;
};

/// Snapshot of one endpoint's standing against its targets.
struct SloVerdict {
  std::string endpoint;
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  std::uint64_t slow = 0;  // latency above target p99 (when a target is set)
  std::uint64_t p50_us = 0;
  std::uint64_t p99_us = 0;
  std::uint64_t p999_us = 0;
  std::uint64_t max_us = 0;
  SloTarget target;
  bool p50_ok = true;
  bool p99_ok = true;
  bool p999_ok = true;
  /// Error-budget burn: (errors + slow) / (error_budget * requests).
  /// 1.0 = budget exactly consumed; > 1.0 = budget blown.
  double budget_burn = 0.0;

  bool ok() const { return p50_ok && p99_ok && p999_ok && budget_burn <= 1.0; }
};

/// Windowed, mergeable per-endpoint SLO tracker.
///
/// Endpoints are registered (or resolved) by name; the returned handle is
/// stable for the tracker's lifetime, so hot paths resolve once and record
/// through the pointer. Each endpoint keeps a *cumulative* histogram plus a
/// *current-window* histogram; roll_window() folds the window into nothing
/// (the cumulative histogram already saw every sample) but snapshots the
/// window's quantiles and advances the window counter — giving burn-rate
/// style "how bad was the last window" visibility without losing the
/// all-time distribution.
class SloTracker {
 public:
  class Endpoint {
   public:
    explicit Endpoint(std::string name, SloTarget target)
        : name_(std::move(name)), target_(target) {}

    /// Records one request: its end-to-end latency and whether it errored.
    /// Thread-safe.
    void record(std::uint64_t latency_us, bool error = false);

    const std::string& name() const { return name_; }
    const SloTarget& target() const { return target_; }
    const LatencyHistogram& histogram() const { return total_; }
    std::uint64_t requests() const;
    std::uint64_t errors() const;
    std::uint64_t slow() const;

    SloVerdict verdict() const;

   private:
    friend class SloTracker;

    std::string name_;
    SloTarget target_;
    LatencyHistogram total_;
    LatencyHistogram window_;
    mutable std::mutex mu_;  // guards the counters below
    std::uint64_t requests_ = 0;
    std::uint64_t errors_ = 0;
    std::uint64_t slow_ = 0;
    // Last completed window, captured by roll_window().
    std::uint64_t windows_completed_ = 0;
    SloVerdict last_window_;
  };

  /// Resolves (creating on first use) the endpoint `name`. A later call with
  /// a different target keeps the original registration's target.
  Endpoint& endpoint(const std::string& name, SloTarget target = {});

  /// Convenience for cold paths: resolve + record in one call.
  void record(const std::string& name, std::uint64_t latency_us, bool error = false) {
    endpoint(name).record(latency_us, error);
  }

  /// Closes the current window on every endpoint: snapshots the window
  /// verdict, clears the window histogram, bumps the window counter.
  void roll_window();

  /// Verdicts for every endpoint, in name order (deterministic).
  std::vector<SloVerdict> verdicts() const;
  /// Last completed window's verdicts, in name order.
  std::vector<SloVerdict> window_verdicts() const;
  std::uint64_t windows_completed() const;

  /// Publishes the current standing into `registry` as deterministic gauges:
  ///   slo.<endpoint>.requests / .errors / .slow
  ///   slo.<endpoint>.p50_us / .p99_us / .p999_us / .max_us
  ///   slo.<endpoint>.ok           (1 when every bound holds, else 0)
  ///   slo.<endpoint>.budget_burn_pct  (error-budget burn, percent)
  ///   slo.windows                 (completed window count)
  /// Call after writers quiesce; repeated calls overwrite.
  void publish(MetricsRegistry& registry) const;

 private:
  mutable std::mutex mu_;  // guards the endpoint map (not the endpoints)
  std::map<std::string, Endpoint> endpoints_;
  std::uint64_t windows_completed_ = 0;
};

}  // namespace icbtc::obs
