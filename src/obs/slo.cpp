#include "obs/slo.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace icbtc::obs {

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

std::size_t LatencyHistogram::bucket_index(std::uint64_t value) {
  if (value < kSubBuckets) return static_cast<std::size_t>(value);
  // MSB position p >= kSubBits. The octave [2^p, 2^(p+1)) is split into
  // kSubBuckets/2 sub-buckets of width 2^shift each.
  unsigned p = 63u - static_cast<unsigned>(std::countl_zero(value));
  unsigned shift = p - kSubBits + 1;
  std::uint64_t sub = value >> shift;  // in [kSubBuckets/2, kSubBuckets)
  return static_cast<std::size_t>(kSubBuckets) +
         static_cast<std::size_t>(shift - 1) * (kSubBuckets / 2) +
         static_cast<std::size_t>(sub - kSubBuckets / 2);
}

std::uint64_t LatencyHistogram::bucket_lower(std::size_t index) {
  if (index < kSubBuckets) return index;
  std::size_t off = index - static_cast<std::size_t>(kSubBuckets);
  unsigned shift = static_cast<unsigned>(off / (kSubBuckets / 2)) + 1;
  std::uint64_t sub = kSubBuckets / 2 + off % (kSubBuckets / 2);
  return sub << shift;
}

std::uint64_t LatencyHistogram::bucket_upper(std::size_t index) {
  if (index < kSubBuckets) return index;
  std::size_t off = index - static_cast<std::size_t>(kSubBuckets);
  unsigned shift = static_cast<unsigned>(off / (kSubBuckets / 2)) + 1;
  return bucket_lower(index) + ((1ULL << shift) - 1);
}

LatencyHistogram::LatencyHistogram() : buckets_(kBucketCount, 0) {}

void LatencyHistogram::record(std::uint64_t value_us) {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) {
    min_ = max_ = value_us;
  } else {
    min_ = std::min(min_, value_us);
    max_ = std::max(max_, value_us);
  }
  ++count_;
  sum_ += value_us;
  ++buckets_[bucket_index(value_us)];
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  // Copy the other side under its own lock first: merging a histogram into
  // itself or cross-merging two histograms from two threads must not
  // deadlock on lock ordering.
  std::vector<std::uint64_t> other_buckets;
  std::uint64_t other_count, other_sum, other_min, other_max;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    other_buckets = other.buckets_;
    other_count = other.count_;
    other_sum = other.sum_;
    other_min = other.min_;
    other_max = other.max_;
  }
  if (other_count == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) {
    min_ = other_min;
    max_ = other_max;
  } else {
    min_ = std::min(min_, other_min);
    max_ = std::max(max_, other_max);
  }
  count_ += other_count;
  sum_ += other_sum;
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other_buckets[i];
}

void LatencyHistogram::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = sum_ = min_ = max_ = 0;
}

std::uint64_t LatencyHistogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

std::uint64_t LatencyHistogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

std::uint64_t LatencyHistogram::min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_;
}

std::uint64_t LatencyHistogram::max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

double LatencyHistogram::mean() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
}

std::uint64_t LatencyHistogram::quantile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  return quantile_locked(q);
}

std::uint64_t LatencyHistogram::quantile_locked(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank (ceil) — integer rank in [1, count], no interpolation, so
  // the result is a pure function of the recorded multiset.
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  rank = std::clamp<std::uint64_t>(rank, 1, count_);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    cumulative += buckets_[i];
    if (cumulative < rank) continue;
    std::uint64_t lower = bucket_lower(i);
    std::uint64_t upper = bucket_upper(i);
    std::uint64_t mid = lower + (upper - lower) / 2;
    return std::clamp(mid, min_, max_);
  }
  return max_;
}

std::uint64_t LatencyHistogram::count_above(std::uint64_t threshold_us) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (std::size_t i = bucket_index(threshold_us) + 1; i < buckets_.size(); ++i) {
    total += buckets_[i];
  }
  return total;
}

std::vector<LatencyHistogram::Bucket> LatencyHistogram::nonzero_buckets() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Bucket> out;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    out.push_back(Bucket{bucket_lower(i), bucket_upper(i), buckets_[i]});
  }
  return out;
}

// ---------------------------------------------------------------------------
// SloTracker
// ---------------------------------------------------------------------------

void SloTracker::Endpoint::record(std::uint64_t latency_us, bool error) {
  total_.record(latency_us);
  window_.record(latency_us);
  std::lock_guard<std::mutex> lock(mu_);
  ++requests_;
  if (error) ++errors_;
  if (target_.p99_us != 0 && latency_us > target_.p99_us) ++slow_;
}

std::uint64_t SloTracker::Endpoint::requests() const {
  std::lock_guard<std::mutex> lock(mu_);
  return requests_;
}

std::uint64_t SloTracker::Endpoint::errors() const {
  std::lock_guard<std::mutex> lock(mu_);
  return errors_;
}

std::uint64_t SloTracker::Endpoint::slow() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slow_;
}

SloVerdict SloTracker::Endpoint::verdict() const {
  SloVerdict v;
  v.endpoint = name_;
  v.target = target_;
  v.p50_us = total_.quantile(0.50);
  v.p99_us = total_.quantile(0.99);
  v.p999_us = total_.quantile(0.999);
  v.max_us = total_.max();
  {
    std::lock_guard<std::mutex> lock(mu_);
    v.requests = requests_;
    v.errors = errors_;
    v.slow = slow_;
  }
  v.p50_ok = target_.p50_us == 0 || v.p50_us <= target_.p50_us;
  v.p99_ok = target_.p99_us == 0 || v.p99_us <= target_.p99_us;
  v.p999_ok = target_.p999_us == 0 || v.p999_us <= target_.p999_us;
  double budget = target_.error_budget * static_cast<double>(v.requests);
  v.budget_burn =
      budget > 0.0 ? static_cast<double>(v.errors + v.slow) / budget : 0.0;
  return v;
}

SloTracker::Endpoint& SloTracker::endpoint(const std::string& name, SloTarget target) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = endpoints_.find(name);
  if (it != endpoints_.end()) return it->second;
  return endpoints_.try_emplace(name, name, target).first->second;
}

void SloTracker::roll_window() {
  std::lock_guard<std::mutex> lock(mu_);
  ++windows_completed_;
  for (auto& [name, ep] : endpoints_) {
    SloVerdict window_verdict;
    window_verdict.endpoint = name;
    window_verdict.target = ep.target_;
    window_verdict.requests = ep.window_.count();
    window_verdict.p50_us = ep.window_.quantile(0.50);
    window_verdict.p99_us = ep.window_.quantile(0.99);
    window_verdict.p999_us = ep.window_.quantile(0.999);
    window_verdict.max_us = ep.window_.max();
    window_verdict.p50_ok =
        ep.target_.p50_us == 0 || window_verdict.p50_us <= ep.target_.p50_us;
    window_verdict.p99_ok =
        ep.target_.p99_us == 0 || window_verdict.p99_us <= ep.target_.p99_us;
    window_verdict.p999_ok =
        ep.target_.p999_us == 0 || window_verdict.p999_us <= ep.target_.p999_us;
    ep.window_.reset();
    std::lock_guard<std::mutex> ep_lock(ep.mu_);
    ep.windows_completed_ = windows_completed_;
    ep.last_window_ = std::move(window_verdict);
  }
}

std::vector<SloVerdict> SloTracker::verdicts() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SloVerdict> out;
  out.reserve(endpoints_.size());
  for (const auto& [name, ep] : endpoints_) out.push_back(ep.verdict());
  return out;
}

std::vector<SloVerdict> SloTracker::window_verdicts() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SloVerdict> out;
  out.reserve(endpoints_.size());
  for (const auto& [name, ep] : endpoints_) {
    std::lock_guard<std::mutex> ep_lock(ep.mu_);
    out.push_back(ep.last_window_);
  }
  return out;
}

std::uint64_t SloTracker::windows_completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return windows_completed_;
}

void SloTracker::publish(MetricsRegistry& registry) const {
  auto verdict_list = verdicts();
  for (const auto& v : verdict_list) {
    std::string prefix = "slo." + v.endpoint;
    auto set = [&](const char* suffix, std::uint64_t value) {
      registry.gauge(prefix + suffix).set(static_cast<std::int64_t>(value));
    };
    set(".requests", v.requests);
    set(".errors", v.errors);
    set(".slow", v.slow);
    set(".p50_us", v.p50_us);
    set(".p99_us", v.p99_us);
    set(".p999_us", v.p999_us);
    set(".max_us", v.max_us);
    set(".ok", v.ok() ? 1 : 0);
    // Percent with integer truncation keeps the gauge integral (and the
    // export deterministic).
    set(".budget_burn_pct", static_cast<std::uint64_t>(v.budget_burn * 100.0));
  }
  registry.gauge("slo.windows").set(static_cast<std::int64_t>(windows_completed()));
}

}  // namespace icbtc::obs
