// Observability substrate (the measurement side of §IV-B): a zero-dependency
// metrics registry with named counters, gauges, and histograms, plus JSON and
// ASCII-table exporters.
//
// Everything is deterministic: metrics are stored and exported in name order,
// histograms use fixed bucket bounds, and no wall-clock or randomness enters
// the snapshot — two identical seeded simulation runs therefore produce
// byte-identical to_json() output. Components accept an optional
// MetricsRegistry* and no-op when none is attached, so the hot paths pay a
// single null check when unobserved.
//
// Thread safety: counters and gauges are atomics, histogram observation and
// registry lookup/creation are mutex-guarded, so instruments may be updated
// from parallel::ThreadPool workers. Snapshotting (to_json/to_table) is only
// meaningful once concurrent writers have quiesced — totals are exact then,
// but a snapshot raced against writers may mix per-metric states.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace icbtc::obs {

/// Monotonically increasing event count. inc() is lock-free.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time level (sizes, heights, ...). Signed so deltas can go down.
/// set()/add() are lock-free.
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram with an exact count/sum/min/max summary and
/// bucket-interpolated quantile estimates (Prometheus-style: each bucket
/// counts observations <= its upper bound; an implicit +inf bucket catches
/// the rest). observe() and the accessors take an internal mutex, so a
/// histogram may be fed from multiple pool workers.
class Histogram {
 public:
  /// `bounds` are the finite bucket upper bounds, strictly ascending.
  explicit Histogram(std::vector<double> bounds);

  /// Move is needed for map emplacement; the source must be quiescent.
  Histogram(Histogram&& other) noexcept;

  void observe(double value);

  /// Exact merge: adds `other`'s buckets and summary into this histogram.
  /// Both histograms must share identical bucket bounds (fixed boundaries
  /// are what make the merge exact — the result is bucket-for-bucket what a
  /// single histogram observing both streams would hold); throws
  /// std::invalid_argument otherwise. Quantile estimates therefore never
  /// drift under sharded collection. Thread-safe, including self-merge.
  void merge(const Histogram& other);

  std::uint64_t count() const;
  double sum() const;
  double min() const;
  double max() const;
  double mean() const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; size() == bounds().size() + 1, the
  /// last entry being the +inf overflow bucket.
  std::vector<std::uint64_t> bucket_counts() const;

  /// Estimated q-quantile (q in [0,1]) by linear interpolation inside the
  /// bucket holding the target rank, clamped to the observed [min, max].
  /// Edge cases: an empty histogram returns 0; a single observation is
  /// returned for every q; q=0 returns min(), q=1 returns max().
  double quantile(double q) const;

  /// 1-2-5 decade bounds spanning [lo, hi], e.g. {1,2,5,10,20,50,...}.
  static std::vector<double> decade_bounds(double lo, double hi);
  /// Geometric bounds: start, start*factor, ... (`n` bounds).
  static std::vector<double> exponential_bounds(double start, double factor, int n);

 private:
  double quantile_locked(double q) const;

  std::vector<double> bounds_;
  mutable std::mutex mu_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Named metrics, created on first use and stored in name order. References
/// returned by counter()/gauge()/histogram() remain valid for the registry's
/// lifetime (node-based map storage), so hot paths resolve once and keep the
/// pointer. Lookup/creation is mutex-guarded; the returned instruments are
/// themselves thread-safe.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Creates the histogram with `bounds` on first use (default: instruction-
  /// scale decade bounds); later calls return the existing histogram.
  Histogram& histogram(const std::string& name, std::vector<double> bounds = {});

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const { return histograms_; }

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

 private:
  std::mutex mu_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// Serializes the registry as a deterministic JSON document (metrics in name
/// order, stable number formatting). Shape:
///   {"counters": {...}, "gauges": {...},
///    "histograms": {"name": {"count":..,"sum":..,"min":..,"max":..,
///                            "p50":..,"p90":..,"p99":..,
///                            "buckets": [{"le":..,"count":..}, ...]}}}
std::string to_json(const MetricsRegistry& registry);

/// Renders the registry as a fixed-width ASCII table for live display (the
/// fork_monitor example and bench stdout dumps).
std::string to_table(const MetricsRegistry& registry);

}  // namespace icbtc::obs
