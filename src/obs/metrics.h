// Observability substrate (the measurement side of §IV-B): a zero-dependency
// metrics registry with named counters, gauges, and histograms, plus JSON and
// ASCII-table exporters.
//
// Everything is deterministic: metrics are stored and exported in name order,
// histograms use fixed bucket bounds, and no wall-clock or randomness enters
// the snapshot — two identical seeded simulation runs therefore produce
// byte-identical to_json() output. Components accept an optional
// MetricsRegistry* and no-op when none is attached, so the hot paths pay a
// single null check when unobserved.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace icbtc::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Point-in-time level (sizes, heights, ...). Signed so deltas can go down.
class Gauge {
 public:
  void set(std::int64_t v) { value_ = v; }
  void add(std::int64_t delta) { value_ += delta; }
  std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

/// Fixed-bucket histogram with an exact count/sum/min/max summary and
/// bucket-interpolated quantile estimates (Prometheus-style: each bucket
/// counts observations <= its upper bound; an implicit +inf bucket catches
/// the rest).
class Histogram {
 public:
  /// `bounds` are the finite bucket upper bounds, strictly ascending.
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; size() == bounds().size() + 1, the
  /// last entry being the +inf overflow bucket.
  const std::vector<std::uint64_t>& bucket_counts() const { return buckets_; }

  /// Estimated q-quantile (q in [0,1]) by linear interpolation inside the
  /// bucket holding the target rank, clamped to the observed [min, max].
  double quantile(double q) const;

  /// 1-2-5 decade bounds spanning [lo, hi], e.g. {1,2,5,10,20,50,...}.
  static std::vector<double> decade_bounds(double lo, double hi);
  /// Geometric bounds: start, start*factor, ... (`n` bounds).
  static std::vector<double> exponential_bounds(double start, double factor, int n);

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Named metrics, created on first use and stored in name order. References
/// returned by counter()/gauge()/histogram() remain valid for the registry's
/// lifetime (node-based map storage), so hot paths resolve once and keep the
/// pointer.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  /// Creates the histogram with `bounds` on first use (default: instruction-
  /// scale decade bounds); later calls return the existing histogram.
  Histogram& histogram(const std::string& name, std::vector<double> bounds = {});

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const { return histograms_; }

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// Serializes the registry as a deterministic JSON document (metrics in name
/// order, stable number formatting). Shape:
///   {"counters": {...}, "gauges": {...},
///    "histograms": {"name": {"count":..,"sum":..,"min":..,"max":..,
///                            "p50":..,"p90":..,"p99":..,
///                            "buckets": [{"le":..,"count":..}, ...]}}}
std::string to_json(const MetricsRegistry& registry);

/// Renders the registry as a fixed-width ASCII table for live display (the
/// fork_monitor example and bench stdout dumps).
std::string to_table(const MetricsRegistry& registry);

}  // namespace icbtc::obs
