// Shared deterministic JSON formatting helpers for the obs exporters
// (metrics snapshots, trace records, Chrome trace events). Determinism is
// the whole point: for a given value the rendering is always byte-identical.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace icbtc::obs::detail {

/// Shortest decimal representation that round-trips to the same double.
/// Deterministic for a given value, and value-identity is all the snapshot
/// determinism guarantee needs.
inline std::string format_double(double v) {
  char buf[64];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char esc[8];
          std::snprintf(esc, sizeof(esc), "\\u%04x", c);
          out += esc;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace icbtc::obs::detail
