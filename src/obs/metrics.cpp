#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "obs/json_detail.h"

namespace icbtc::obs {

using detail::format_double;
using detail::json_escape;

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      throw std::invalid_argument("Histogram: bounds must be strictly ascending");
    }
  }
  buckets_.assign(bounds_.size() + 1, 0);
}

Histogram::Histogram(Histogram&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.mu_);
  bounds_ = std::move(other.bounds_);
  buckets_ = std::move(other.buckets_);
  count_ = other.count_;
  sum_ = other.sum_;
  min_ = other.min_;
  max_ = other.max_;
}

void Histogram::observe(double value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
}

void Histogram::merge(const Histogram& other) {
  // Snapshot the other side under its own lock first so self-merge and
  // cross-thread cross-merge cannot deadlock on lock ordering.
  std::vector<double> other_bounds;
  std::vector<std::uint64_t> other_buckets;
  std::uint64_t other_count;
  double other_sum, other_min, other_max;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    other_bounds = other.bounds_;
    other_buckets = other.buckets_;
    other_count = other.count_;
    other_sum = other.sum_;
    other_min = other.min_;
    other_max = other.max_;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (other_bounds != bounds_) {
    throw std::invalid_argument("Histogram::merge: bucket bounds differ");
  }
  if (other_count == 0) return;
  if (count_ == 0) {
    min_ = other_min;
    max_ = other_max;
  } else {
    min_ = std::min(min_, other_min);
    max_ = std::max(max_, other_max);
  }
  count_ += other_count;
  sum_ += other_sum;
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other_buckets[i];
}

std::uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_;
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

double Histogram::mean() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buckets_;
}

double Histogram::quantile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  return quantile_locked(q);
}

double Histogram::quantile_locked(double q) const {
  // Empty histogram: min_/max_ carry no observation, so the only defensible
  // answer is 0 (matching mean()).
  if (count_ == 0) return 0.0;
  // A single observation is the whole distribution — every quantile is it.
  if (count_ == 1) return min_;
  q = std::clamp(q, 0.0, 1.0);
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  double rank = q * static_cast<double>(count_);  // target rank in (0, count]
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    double before = static_cast<double>(cumulative);
    cumulative += buckets_[i];
    if (rank > static_cast<double>(cumulative)) continue;
    // Interpolate within this bucket, clamped to the observed range so the
    // estimate never leaves [min, max].
    double lower = i == 0 ? min_ : std::max(min_, bounds_[i - 1]);
    double upper = i < bounds_.size() ? std::min(max_, bounds_[i]) : max_;
    if (upper < lower) upper = lower;
    double fraction = (rank - before) / static_cast<double>(buckets_[i]);
    return lower + (upper - lower) * fraction;
  }
  return max_;
}

std::vector<double> Histogram::decade_bounds(double lo, double hi) {
  if (!(lo > 0.0) || hi < lo) throw std::invalid_argument("decade_bounds: need 0 < lo <= hi");
  std::vector<double> out;
  double decade = std::pow(10.0, std::floor(std::log10(lo)));
  for (;; decade *= 10.0) {
    for (double step : {1.0, 2.0, 5.0}) {
      double bound = decade * step;
      if (bound < lo) continue;
      out.push_back(bound);
      if (bound >= hi) return out;
    }
  }
}

std::vector<double> Histogram::exponential_bounds(double start, double factor, int n) {
  if (!(start > 0.0) || factor <= 1.0 || n <= 0) {
    throw std::invalid_argument("exponential_bounds: bad parameters");
  }
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n));
  double bound = start;
  for (int i = 0; i < n; ++i, bound *= factor) out.push_back(bound);
  return out;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name, std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  if (bounds.empty()) {
    // Default: instruction-count scale (10^3 .. 10^12), 1-2-5 per decade.
    bounds = Histogram::decade_bounds(1e3, 1e12);
  }
  return histograms_.emplace(name, Histogram(std::move(bounds))).first->second;
}

std::string to_json(const MetricsRegistry& registry) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : registry.counters()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": " + std::to_string(counter.value());
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : registry.gauges()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": " + std::to_string(gauge.value());
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : registry.histograms()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": {\n";
    out += "      \"count\": " + std::to_string(h.count()) + ",\n";
    out += "      \"sum\": " + format_double(h.sum()) + ",\n";
    out += "      \"min\": " + format_double(h.min()) + ",\n";
    out += "      \"max\": " + format_double(h.max()) + ",\n";
    out += "      \"p50\": " + format_double(h.quantile(0.5)) + ",\n";
    out += "      \"p90\": " + format_double(h.quantile(0.9)) + ",\n";
    out += "      \"p99\": " + format_double(h.quantile(0.99)) + ",\n";
    out += "      \"buckets\": [";
    const auto counts = h.bucket_counts();
    bool first_bucket = true;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (counts[i] == 0) continue;  // sparse: empty buckets carry no signal
      out += first_bucket ? "" : ", ";
      first_bucket = false;
      std::string le = i < h.bounds().size() ? format_double(h.bounds()[i]) : "\"+inf\"";
      out += "{\"le\": " + le + ", \"count\": " + std::to_string(counts[i]) + "}";
    }
    out += "]\n    }";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string to_table(const MetricsRegistry& registry) {
  char line[256];
  std::string out;
  auto short_num = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4g", v);
    return std::string(buf);
  };
  if (!registry.counters().empty() || !registry.gauges().empty()) {
    std::snprintf(line, sizeof(line), "  %-44s %14s\n", "metric", "value");
    out += line;
    for (const auto& [name, counter] : registry.counters()) {
      std::snprintf(line, sizeof(line), "  %-44s %14llu\n", name.c_str(),
                    static_cast<unsigned long long>(counter.value()));
      out += line;
    }
    for (const auto& [name, gauge] : registry.gauges()) {
      std::snprintf(line, sizeof(line), "  %-44s %14lld\n", name.c_str(),
                    static_cast<long long>(gauge.value()));
      out += line;
    }
  }
  if (!registry.histograms().empty()) {
    std::snprintf(line, sizeof(line), "  %-44s %8s %10s %10s %10s %10s\n", "histogram", "count",
                  "mean", "p50", "p90", "max");
    out += line;
    for (const auto& [name, h] : registry.histograms()) {
      std::snprintf(line, sizeof(line), "  %-44s %8llu %10s %10s %10s %10s\n", name.c_str(),
                    static_cast<unsigned long long>(h.count()), short_num(h.mean()).c_str(),
                    short_num(h.quantile(0.5)).c_str(), short_num(h.quantile(0.9)).c_str(),
                    short_num(h.max()).c_str());
      out += line;
    }
  }
  return out;
}

}  // namespace icbtc::obs
