// Structured tracing + flight recorder: the causal side of the obs layer.
//
// Where MetricsRegistry aggregates (counters/gauges/histograms), the Tracer
// records *individual* operations: spans with begin/end on simulated time,
// parent/child SpanContext propagation (explicit or via the current-span
// stack), span-scoped attributes (heights, txids, byte counts, ic::Meter
// instruction deltas), a fixed-capacity ring-buffer event log (the "flight
// recorder") with severities, and a slow-op watchdog that emits a warning
// event when a span's duration exceeds a configurable budget.
//
// Determinism contract: nothing here reads the wall clock or randomness.
// Time comes from a caller-installed clock (simulation time, or any other
// deterministic monotone source such as metered instructions); ids and
// ordering come from sequential counters assigned on the submitting thread.
// Two identically seeded runs therefore produce byte-identical exports
// (see trace_export.h) — including runs that use parallel::ThreadPool, via
// TraceTaskGroup: span ids are pre-allocated at submit time, workers fill
// disjoint slots, and join() appends the records in task-index order.
//
// Threading: the Tracer itself is confined to the simulation thread (like
// the Simulation it observes). The only cross-thread entry point is
// TraceTaskGroup::record(), which touches a pre-sized slot per task and
// never the tracer.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/sim.h"

namespace icbtc::obs {

/// Trace timestamps are simulated microseconds (util::SimTime), never wall
/// clock.
using TraceTime = util::SimTime;

/// Identifies a span within a tracer. trace_id groups a causal tree (every
/// root span starts a new trace); span_id is unique per tracer.
struct SpanContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  bool valid() const { return span_id != 0; }
  bool operator==(const SpanContext&) const = default;
};

enum class Severity { kDebug = 0, kInfo, kWarn, kError };

const char* to_string(Severity s);

/// A finished span. `attrs` hold pre-rendered JSON values (numbers unquoted,
/// strings quoted+escaped) so exporters can embed them verbatim.
struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  // 0 = root
  std::uint64_t seq = 0;        // begin order on the submitting thread
  std::string name;
  std::string category;  // "canister", "adapter", "btcnet", "ic", ...
  TraceTime start = 0;
  TraceTime end = 0;
  std::vector<std::pair<std::string, std::string>> attrs;

  TraceTime duration() const { return end - start; }
};

/// One flight-recorder entry.
struct TraceEvent {
  std::uint64_t seq = 0;
  TraceTime time = 0;
  Severity severity = Severity::kInfo;
  std::uint64_t trace_id = 0;  // 0 when emitted outside any span
  std::uint64_t span_id = 0;
  std::string name;
  std::string detail;
};

/// One per-request cost record: a Fig. 7 data point binding the consensus
/// latency, metered instructions, response size, and cycle cost of a single
/// replicated/query call. Recorded by the integration layer alongside the
/// request's root span.
struct RequestCostRecord {
  std::string endpoint;
  std::uint64_t trace_id = 0;
  TraceTime latency_us = 0;
  std::uint64_t instructions = 0;
  std::uint64_t response_bytes = 0;
  std::uint64_t cycles = 0;
};

struct TracerConfig {
  /// Flight-recorder ring capacity: the newest `event_capacity` events are
  /// retained, older ones are overwritten (deterministically).
  std::size_t event_capacity = 1024;
  /// Cap on retained finished spans; further spans are counted in
  /// dropped_spans() and discarded. The cap is count-based and therefore
  /// deterministic.
  std::size_t max_spans = 1 << 16;
  /// Default slow-span budget in simulated µs (0 disables the watchdog).
  /// Per-category overrides via set_slow_budget(category, budget).
  TraceTime slow_span_budget = 0;
};

class Tracer {
 public:
  explicit Tracer(TracerConfig config = {});

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // ------------------------------- Clock --------------------------------

  /// Installs the deterministic time source (e.g. `[&]{ return sim.now(); }`
  /// or an instruction-derived clock). Without a clock, now() is 0.
  void set_clock(std::function<TraceTime()> clock) { clock_ = std::move(clock); }
  bool has_clock() const { return static_cast<bool>(clock_); }
  TraceTime now() const { return clock_ ? clock_() : 0; }

  // ------------------------------- Spans --------------------------------

  /// Begins a span. An invalid `parent` means "use the current span stack
  /// top" (root if the stack is empty); a valid one forces that parent —
  /// that is how causality is carried across scheduled events (capture
  /// current() at send time, pass it at delivery time).
  SpanContext begin_span(std::string_view name, std::string_view category,
                         SpanContext parent = {});

  /// Ends a span at now() (or at an explicit simulated end time, clamped to
  /// the span's start; used for modelled durations such as
  /// instructions-derived execution latency). Runs the slow-op watchdog.
  void end_span(SpanContext context);
  void end_span_at(SpanContext context, TraceTime at);

  /// Attaches an attribute to an open span. No-ops on unknown/finished ids.
  void attr_int(SpanContext context, std::string_view key, std::int64_t value);
  void attr_uint(SpanContext context, std::string_view key, std::uint64_t value);
  void attr_double(SpanContext context, std::string_view key, double value);
  void attr_str(SpanContext context, std::string_view key, std::string_view value);

  /// The innermost open span entered via push_current()/ScopedSpan on this
  /// thread, or an invalid context.
  SpanContext current() const;
  void push_current(SpanContext context) { stack_.push_back(context); }
  void pop_current();

  // --------------------------- Flight recorder --------------------------

  /// Appends an event to the ring buffer, bound to `context` (or to
  /// current() when invalid).
  void event(Severity severity, std::string_view name, std::string_view detail = {},
             SpanContext context = {});

  // ------------------------------ Watchdog ------------------------------

  void set_slow_budget(TraceTime budget) { config_.slow_span_budget = budget; }
  void set_slow_budget(std::string_view category, TraceTime budget);

  // --------------------------- Request records --------------------------

  void record_request_cost(RequestCostRecord record) {
    request_costs_.push_back(std::move(record));
  }
  const std::vector<RequestCostRecord>& request_costs() const { return request_costs_; }

  // ----------------------------- Inspection -----------------------------

  const TracerConfig& config() const { return config_; }
  /// Finished spans in begin (seq) order.
  const std::vector<SpanRecord>& finished_spans() const { return finished_; }
  /// Flight-recorder contents, oldest first.
  std::vector<TraceEvent> events() const;
  std::size_t open_span_count() const { return open_.size(); }
  std::uint64_t dropped_spans() const { return dropped_spans_; }
  /// Total events ever recorded (>= events().size() once the ring wrapped).
  std::uint64_t total_events() const { return next_event_seq_; }

  /// Drops all recorded data (spans, events, request records) but keeps the
  /// clock, budgets, and id counters.
  void clear();

 private:
  friend class TraceTaskGroup;

  void finish(SpanRecord&& record);
  static void render_attr(SpanRecord& record, std::string_view key, std::string value);

  TracerConfig config_;
  std::function<TraceTime()> clock_;
  std::uint64_t next_span_id_ = 1;
  std::uint64_t next_trace_id_ = 1;
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_event_seq_ = 0;
  std::uint64_t dropped_spans_ = 0;

  std::unordered_map<std::uint64_t, SpanRecord> open_;  // by span_id
  std::vector<SpanContext> stack_;
  std::vector<SpanRecord> finished_;
  std::vector<TraceEvent> ring_;  // flight recorder, capacity-bounded
  std::vector<std::pair<std::string, TraceTime>> category_budgets_;
  std::vector<RequestCostRecord> request_costs_;
};

/// RAII span bound to the tracer's current-span stack. Inert when the tracer
/// is null, so call sites stay branch-free:
///   obs::ScopedSpan span(tracer_, "canister.get_utxos", "canister");
///   span.attr("instructions", segment.sample());
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(Tracer* tracer, std::string_view name, std::string_view category,
             SpanContext parent = {});
  ~ScopedSpan() { end(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return tracer_ != nullptr && !ended_; }
  SpanContext context() const { return context_; }
  TraceTime start() const { return start_; }
  Tracer* tracer() const { return tracer_; }

  void attr(std::string_view key, std::int64_t value);
  void attr(std::string_view key, std::uint64_t value);
  void attr(std::string_view key, double value);
  void attr(std::string_view key, std::string_view value);
  /// Avoids the ambiguous int literal -> int64/uint64/double overload set.
  void attr(std::string_view key, int value) { attr(key, static_cast<std::int64_t>(value)); }

  void event(Severity severity, std::string_view name, std::string_view detail = {});

  /// Ends the span now / at an explicit simulated time. Idempotent.
  void end();
  void end_at(TraceTime at);

 private:
  Tracer* tracer_ = nullptr;
  SpanContext context_{};
  TraceTime start_ = 0;
  bool ended_ = false;
};

/// Deterministic span recording across parallel::ThreadPool tasks.
///
/// Construct on the submitting thread before handing work to the pool: the
/// group captures the parent context and timestamp and pre-allocates one
/// span id per task from the tracer's counters. Workers call record(i) (and
/// optionally attach uint attributes) for the task they executed — each task
/// owns slot i exclusively, so no synchronisation is needed. join() (or the
/// destructor) appends the recorded spans to the tracer in task-index order,
/// making the exported trace byte-identical whether the work ran on a pool,
/// on the caller's thread, or any interleaving in between.
///
/// With a null tracer every method is a no-op, so the group can wrap a
/// parallel_for unconditionally.
class TraceTaskGroup {
 public:
  TraceTaskGroup(Tracer* tracer, std::string_view name, std::string_view category,
                 std::size_t tasks);
  ~TraceTaskGroup() { join(); }

  TraceTaskGroup(const TraceTaskGroup&) = delete;
  TraceTaskGroup& operator=(const TraceTaskGroup&) = delete;

  std::size_t size() const { return slots_.size(); }

  /// Marks task i as executed. Thread-safe for distinct i.
  void record(std::size_t i);
  /// Same, attaching deterministic (pure-function-of-input) uint attributes.
  void record(std::size_t i,
              std::initializer_list<std::pair<std::string_view, std::uint64_t>> attrs);

  /// Appends all recorded task spans to the tracer in index order. Must be
  /// called on the submitting thread after the pool work completed.
  /// Idempotent; also invoked by the destructor.
  void join();

 private:
  struct Slot {
    SpanRecord record;
    bool recorded = false;
  };

  Tracer* tracer_ = nullptr;
  std::vector<Slot> slots_;
  bool joined_ = false;
};

}  // namespace icbtc::obs
