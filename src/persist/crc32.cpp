#include "persist/crc32.h"

#include <array>

namespace icbtc::persist {

namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32(util::ByteSpan data, std::uint32_t seed) {
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::uint8_t byte : data) c = kTable[(c ^ byte) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

}  // namespace icbtc::persist
