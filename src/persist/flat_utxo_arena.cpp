#include "persist/flat_utxo_arena.h"

#include <cstring>

namespace icbtc::persist {

namespace {

constexpr std::size_t kInitialSlots = 16;  // power of two

/// Grow when (live + tombstones) exceeds 3/4 of capacity.
bool over_load(std::size_t used, std::size_t capacity) { return used * 4 > capacity * 3; }

std::size_t pow2_at_least(std::size_t n) {
  std::size_t cap = kInitialSlots;
  while (cap < n) cap <<= 1;
  return cap;
}

}  // namespace

FlatUtxoArena::FlatUtxoArena()
    : outpoint_slots_(kInitialSlots, kEmpty), script_slots_(kInitialSlots, kEmpty) {}

std::uint64_t FlatUtxoArena::hash_outpoint(const bitcoin::OutPoint& outpoint) {
  // FNV-1a over txid || vout(LE): byte-order independent of the host because
  // the inputs are explicit bytes. The table layout never leaves the process
  // (checkpoints store sorted entries), so only determinism within a run —
  // for a fixed operation history — matters; this gives cross-host
  // determinism for free.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint8_t b : outpoint.txid.data) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  for (int i = 0; i < 4; ++i) {
    h ^= static_cast<std::uint8_t>(outpoint.vout >> (8 * i));
    h *= 0x100000001b3ULL;
  }
  return h ^ (h >> 32);
}

std::uint64_t FlatUtxoArena::hash_script(util::ByteSpan script) {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ (script.size() * 0x100000001b3ULL);
  for (std::uint8_t b : script) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h ^ (h >> 32);
}

std::uint32_t FlatUtxoArena::slot_index(const bitcoin::OutPoint& outpoint) const {
  const std::size_t mask = outpoint_slots_.size() - 1;
  std::size_t i = static_cast<std::size_t>(hash_outpoint(outpoint)) & mask;
  for (;;) {
    std::uint32_t v = outpoint_slots_[i];
    if (v == kEmpty) return kNil;
    if (v != kTombstone) {
      const Entry& e = entries_[v];
      if (e.vout == outpoint.vout &&
          std::memcmp(e.txid.data(), outpoint.txid.data.data(), 32) == 0) {
        return static_cast<std::uint32_t>(i);
      }
    }
    i = (i + 1) & mask;
  }
}

std::uint32_t FlatUtxoArena::script_rec_index(util::ByteSpan script) const {
  const std::size_t mask = script_slots_.size() - 1;
  std::size_t i = static_cast<std::size_t>(hash_script(script)) & mask;
  for (;;) {
    std::uint32_t v = script_slots_[i];
    if (v == kEmpty) return kNil;
    if (v != kTombstone) {
      const ScriptRec& rec = script_recs_[v];
      if (rec.length == script.size() &&
          std::memcmp(script_bytes_.data() + rec.offset, script.data(), rec.length) == 0) {
        return v;
      }
    }
    i = (i + 1) & mask;
  }
}

void FlatUtxoArena::insert_outpoint_slot(const bitcoin::OutPoint& outpoint,
                                         std::uint32_t entry_idx) {
  const std::size_t mask = outpoint_slots_.size() - 1;
  std::size_t i = static_cast<std::size_t>(hash_outpoint(outpoint)) & mask;
  std::size_t first_tombstone = static_cast<std::size_t>(-1);
  for (;;) {
    std::uint32_t v = outpoint_slots_[i];
    if (v == kEmpty) break;
    if (v == kTombstone && first_tombstone == static_cast<std::size_t>(-1)) {
      first_tombstone = i;
    }
    i = (i + 1) & mask;
  }
  if (first_tombstone != static_cast<std::size_t>(-1)) {
    i = first_tombstone;
    --outpoint_tombstones_;
  }
  outpoint_slots_[i] = entry_idx;
}

void FlatUtxoArena::insert_script_slot(util::ByteSpan script, std::uint32_t rec_idx) {
  const std::size_t mask = script_slots_.size() - 1;
  std::size_t i = static_cast<std::size_t>(hash_script(script)) & mask;
  std::size_t first_tombstone = static_cast<std::size_t>(-1);
  for (;;) {
    std::uint32_t v = script_slots_[i];
    if (v == kEmpty) break;
    if (v == kTombstone && first_tombstone == static_cast<std::size_t>(-1)) {
      first_tombstone = i;
    }
    i = (i + 1) & mask;
  }
  if (first_tombstone != static_cast<std::size_t>(-1)) {
    i = first_tombstone;
    --script_tombstones_;
  }
  script_slots_[i] = rec_idx;
}

void FlatUtxoArena::rehash_outpoint_table(std::size_t capacity) {
  outpoint_slots_.assign(capacity, kEmpty);
  outpoint_tombstones_ = 0;
  for (std::uint32_t idx = 0; idx < entries_.size(); ++idx) {
    const Entry& e = entries_[idx];
    if (e.live == 0) continue;
    insert_outpoint_slot(outpoint_of(e), idx);
  }
}

void FlatUtxoArena::rehash_script_table(std::size_t capacity) {
  script_slots_.assign(capacity, kEmpty);
  script_tombstones_ = 0;
  for (std::uint32_t idx = 0; idx < script_recs_.size(); ++idx) {
    const ScriptRec& rec = script_recs_[idx];
    if (rec.head == kNil) continue;
    insert_script_slot(script_span(rec), idx);
  }
}

void FlatUtxoArena::maybe_grow_outpoint_table() {
  if (over_load(live_entries_ + outpoint_tombstones_ + 1, outpoint_slots_.size())) {
    rehash_outpoint_table(pow2_at_least((live_entries_ + 1) * 2));
  }
}

void FlatUtxoArena::maybe_grow_script_table() {
  if (over_load(live_scripts_ + script_tombstones_ + 1, script_slots_.size())) {
    rehash_script_table(pow2_at_least((live_scripts_ + 1) * 2));
  }
}

bool FlatUtxoArena::chain_before(const Entry& a, const Entry& b) const {
  // Canonical get_utxos order: height descending, then outpoint ascending.
  if (a.height != b.height) return a.height > b.height;
  int c = std::memcmp(a.txid.data(), b.txid.data(), 32);
  if (c != 0) return c < 0;
  return a.vout < b.vout;
}

void FlatUtxoArena::chain_link(ScriptRec& rec, std::uint32_t idx) {
  Entry& e = entries_[idx];
  std::uint32_t cur = rec.head;
  std::uint32_t prev = kNil;
  while (cur != kNil && chain_before(entries_[cur], e)) {
    prev = cur;
    cur = entries_[cur].next;
  }
  e.prev = prev;
  e.next = cur;
  if (prev == kNil) {
    rec.head = idx;
  } else {
    entries_[prev].next = idx;
  }
  if (cur != kNil) entries_[cur].prev = idx;
  ++rec.count;
}

void FlatUtxoArena::chain_unlink(ScriptRec& rec, std::uint32_t idx) {
  Entry& e = entries_[idx];
  if (e.prev == kNil) {
    rec.head = e.next;
  } else {
    entries_[e.prev].next = e.next;
  }
  if (e.next != kNil) entries_[e.next].prev = e.prev;
  --rec.count;
}

bool FlatUtxoArena::insert(const bitcoin::OutPoint& outpoint, bitcoin::Amount value,
                           int height, util::ByteSpan script) {
  if (slot_index(outpoint) != kNil) return false;  // duplicate; keep first
  maybe_grow_outpoint_table();
  maybe_grow_script_table();

  // Intern the script: find its record or append the bytes and mint one.
  std::uint32_t rec_idx = script_rec_index(script);
  if (rec_idx == kNil) {
    if (free_recs_ != kNil) {
      rec_idx = free_recs_;
      free_recs_ = script_recs_[rec_idx].next_free;
    } else {
      rec_idx = static_cast<std::uint32_t>(script_recs_.size());
      script_recs_.emplace_back();
    }
    ScriptRec& rec = script_recs_[rec_idx];
    rec.offset = script_bytes_.size();
    rec.length = static_cast<std::uint32_t>(script.size());
    rec.head = kNil;
    rec.count = 0;
    rec.next_free = kNil;
    script_bytes_.insert(script_bytes_.end(), script.begin(), script.end());
    insert_script_slot(script, rec_idx);
    ++live_scripts_;
  }

  // Allocate the entry row (LIFO reuse keeps the layout deterministic).
  std::uint32_t idx;
  if (free_entries_ != kNil) {
    idx = free_entries_;
    free_entries_ = entries_[idx].next;
    --dead_entries_;
  } else {
    idx = static_cast<std::uint32_t>(entries_.size());
    entries_.emplace_back();
  }
  Entry& e = entries_[idx];
  std::copy(outpoint.txid.data.begin(), outpoint.txid.data.end(), e.txid.begin());
  e.vout = outpoint.vout;
  e.value = value;
  e.height = height;
  e.script_id = rec_idx;
  e.live = 1;

  chain_link(script_recs_[rec_idx], idx);
  insert_outpoint_slot(outpoint, idx);
  ++live_entries_;
  return true;
}

std::optional<FlatUtxoArena::Erased> FlatUtxoArena::erase(const bitcoin::OutPoint& outpoint) {
  std::uint32_t slot = slot_index(outpoint);
  if (slot == kNil) return std::nullopt;
  std::uint32_t idx = outpoint_slots_[slot];
  Entry& e = entries_[idx];
  ScriptRec& rec = script_recs_[e.script_id];

  Erased erased{e.value, e.height, rec.length};
  chain_unlink(rec, idx);
  if (rec.head == kNil) {
    // Last UTXO of the script: retire the record (its arena bytes stay until
    // compaction) and tombstone its slot.
    const std::size_t mask = script_slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(hash_script(script_span(rec))) & mask;
    while (script_slots_[i] != e.script_id) i = (i + 1) & mask;
    script_slots_[i] = kTombstone;
    ++script_tombstones_;
    dead_script_bytes_ += rec.length;
    rec.next_free = free_recs_;
    free_recs_ = e.script_id;
    --live_scripts_;
  }

  outpoint_slots_[slot] = kTombstone;
  ++outpoint_tombstones_;
  e.live = 0;
  e.script_id = kNil;
  e.next = free_entries_;
  e.prev = kNil;
  free_entries_ = idx;
  --live_entries_;
  ++dead_entries_;

  maybe_compact();
  return erased;
}

std::optional<FlatUtxoArena::Found> FlatUtxoArena::find(
    const bitcoin::OutPoint& outpoint) const {
  std::uint32_t slot = slot_index(outpoint);
  if (slot == kNil) return std::nullopt;
  const Entry& e = entries_[outpoint_slots_[slot]];
  return Found{e.value, e.height};
}

bool FlatUtxoArena::script_of(const bitcoin::OutPoint& outpoint, util::Bytes& out) const {
  std::uint32_t slot = slot_index(outpoint);
  if (slot == kNil) return false;
  const Entry& e = entries_[outpoint_slots_[slot]];
  util::ByteSpan span = script_span(script_recs_[e.script_id]);
  out.assign(span.begin(), span.end());
  return true;
}

void FlatUtxoArena::for_each_of_script(util::ByteSpan script, const UtxoVisitor& fn) const {
  std::uint32_t rec_idx = script_rec_index(script);
  if (rec_idx == kNil) return;
  for (std::uint32_t cur = script_recs_[rec_idx].head; cur != kNil;
       cur = entries_[cur].next) {
    const Entry& e = entries_[cur];
    fn(outpoint_of(e), e.value, e.height);
  }
}

std::size_t FlatUtxoArena::script_utxo_count(util::ByteSpan script) const {
  std::uint32_t rec_idx = script_rec_index(script);
  return rec_idx == kNil ? 0 : script_recs_[rec_idx].count;
}

void FlatUtxoArena::visit(const EntryVisitor& fn) const {
  for (const Entry& e : entries_) {
    if (e.live == 0) continue;
    fn(outpoint_of(e), e.value, e.height, script_span(script_recs_[e.script_id]));
  }
}

std::uint64_t FlatUtxoArena::live_bytes() const {
  std::uint64_t script_bytes = script_bytes_.size() - dead_script_bytes_;
  return static_cast<std::uint64_t>(live_entries_) * (sizeof(Entry) + sizeof(std::uint32_t)) +
         script_bytes +
         static_cast<std::uint64_t>(live_scripts_) *
             (sizeof(ScriptRec) + sizeof(std::uint32_t));
}

std::uint64_t FlatUtxoArena::resident_bytes() const {
  return static_cast<std::uint64_t>(entries_.capacity()) * sizeof(Entry) +
         script_bytes_.capacity() + script_recs_.capacity() * sizeof(ScriptRec) +
         (outpoint_slots_.capacity() + script_slots_.capacity()) * sizeof(std::uint32_t);
}

void FlatUtxoArena::maybe_compact() {
  // Deterministic thresholds: compact when dead rows outnumber half the live
  // ones (and are numerous enough to be worth it), or when retired script
  // bytes dominate the arena.
  const bool dead_rows = dead_entries_ >= 1024 && dead_entries_ * 2 > live_entries_;
  const bool dead_bytes =
      dead_script_bytes_ >= 16384 && dead_script_bytes_ * 2 > script_bytes_.size();
  if (dead_rows || dead_bytes) compact();
}

void FlatUtxoArena::compact() {
  // Rebuild entries (live only, old index order), script records (live only,
  // old index order) and the script byte arena; remap chain links and ids
  // via old→new index maps, then rehash both tables. Entry order — and hence
  // visit() order — is preserved, keeping compaction invisible to the
  // deterministic serialization path.
  std::vector<std::uint32_t> entry_map(entries_.size(), kNil);
  std::vector<std::uint32_t> rec_map(script_recs_.size(), kNil);

  std::vector<ScriptRec> new_recs;
  new_recs.reserve(live_scripts_);
  std::vector<std::uint8_t> new_bytes;
  new_bytes.reserve(script_bytes_.size() - dead_script_bytes_);
  for (std::uint32_t idx = 0; idx < script_recs_.size(); ++idx) {
    const ScriptRec& rec = script_recs_[idx];
    if (rec.head == kNil) continue;
    rec_map[idx] = static_cast<std::uint32_t>(new_recs.size());
    ScriptRec moved = rec;
    moved.offset = new_bytes.size();
    moved.next_free = kNil;
    new_bytes.insert(new_bytes.end(), script_bytes_.begin() + static_cast<std::ptrdiff_t>(rec.offset),
                     script_bytes_.begin() + static_cast<std::ptrdiff_t>(rec.offset + rec.length));
    new_recs.push_back(moved);
  }

  std::vector<Entry> new_entries;
  new_entries.reserve(live_entries_);
  for (std::uint32_t idx = 0; idx < entries_.size(); ++idx) {
    if (entries_[idx].live == 0) continue;
    entry_map[idx] = static_cast<std::uint32_t>(new_entries.size());
    new_entries.push_back(entries_[idx]);
  }
  for (Entry& e : new_entries) {
    e.script_id = rec_map[e.script_id];
    if (e.next != kNil) e.next = entry_map[e.next];
    if (e.prev != kNil) e.prev = entry_map[e.prev];
  }
  for (ScriptRec& rec : new_recs) rec.head = entry_map[rec.head];

  entries_ = std::move(new_entries);
  script_recs_ = std::move(new_recs);
  script_bytes_ = std::move(new_bytes);
  free_entries_ = kNil;
  free_recs_ = kNil;
  dead_entries_ = 0;
  dead_script_bytes_ = 0;

  rehash_outpoint_table(pow2_at_least((live_entries_ + 1) * 2));
  rehash_script_table(pow2_at_least((live_scripts_ + 1) * 2));
  ++compactions_;
}

}  // namespace icbtc::persist
