#include "persist/shard_store.h"

#include <cstring>

namespace icbtc::persist {

const char* to_string(UtxoBackend backend) {
  switch (backend) {
    case UtxoBackend::kArena: return "arena";
    case UtxoBackend::kMap: return "map";
  }
  return "?";
}

std::unique_ptr<ShardStore> make_shard_store(UtxoBackend backend) {
  if (backend == UtxoBackend::kMap) return std::make_unique<MapShardStore>();
  return std::make_unique<ArenaShardStore>();
}

std::size_t MapShardStore::ScriptBytesHash::operator()(const util::Bytes& b) const noexcept {
  // FNV-1a; process-local (never serialized).
  std::size_t h = 14695981039346656037ULL ^ (b.size() * 1099511628211ULL);
  for (std::uint8_t byte : b) {
    h ^= byte;
    h *= 1099511628211ULL;
  }
  return h;
}

bool MapShardStore::insert(const bitcoin::OutPoint& outpoint, bitcoin::Amount value,
                           int height, util::ByteSpan script) {
  Entry entry;
  entry.script.assign(script.begin(), script.end());
  entry.value = value;
  entry.height = height;
  auto [it, inserted] = by_outpoint_.emplace(outpoint, std::move(entry));
  if (!inserted) return false;
  by_script_[it->second.script][Key{-height, outpoint}] = value;
  return true;
}

std::optional<ShardStore::Erased> MapShardStore::erase(const bitcoin::OutPoint& outpoint) {
  auto it = by_outpoint_.find(outpoint);
  if (it == by_outpoint_.end()) return std::nullopt;
  const Entry& entry = it->second;
  Erased erased{entry.value, entry.height, static_cast<std::uint32_t>(entry.script.size())};
  auto script_it = by_script_.find(entry.script);
  if (script_it != by_script_.end()) {
    script_it->second.erase(Key{-entry.height, outpoint});
    if (script_it->second.empty()) by_script_.erase(script_it);
  }
  by_outpoint_.erase(it);
  return erased;
}

std::optional<ShardStore::Found> MapShardStore::find(const bitcoin::OutPoint& outpoint) const {
  auto it = by_outpoint_.find(outpoint);
  if (it == by_outpoint_.end()) return std::nullopt;
  return Found{it->second.value, it->second.height};
}

bool MapShardStore::script_of(const bitcoin::OutPoint& outpoint, util::Bytes& out) const {
  auto it = by_outpoint_.find(outpoint);
  if (it == by_outpoint_.end()) return false;
  out = it->second.script;
  return true;
}

void MapShardStore::for_each_of_script(util::ByteSpan script, const UtxoVisitor& fn) const {
  util::Bytes key(script.begin(), script.end());
  auto it = by_script_.find(key);
  if (it == by_script_.end()) return;
  for (const auto& [k, value] : it->second) {
    fn(k.outpoint, value, -k.neg_height);
  }
}

std::size_t MapShardStore::script_utxo_count(util::ByteSpan script) const {
  util::Bytes key(script.begin(), script.end());
  auto it = by_script_.find(key);
  return it == by_script_.end() ? 0 : it->second.size();
}

void MapShardStore::visit(const EntryVisitor& fn) const {
  for (const auto& [outpoint, entry] : by_outpoint_) {
    fn(outpoint, entry.value, entry.height, entry.script);
  }
}

namespace {
/// Heap-block model for the node maps: allocator header plus size rounded to
/// 16. Accounted, not measured — but from the real container shapes.
std::uint64_t heap_block(std::size_t payload) {
  return 16 + ((payload + 15) / 16) * 16;
}
}  // namespace

std::uint64_t MapShardStore::live_bytes() const {
  // Bytes attributable to live entries: the node payloads and script bytes,
  // without bucket arrays or allocator rounding.
  std::uint64_t bytes = 0;
  for (const auto& [outpoint, entry] : by_outpoint_) {
    bytes += sizeof(outpoint) + sizeof(Entry) + entry.script.size();
  }
  for (const auto& [script, chain] : by_script_) {
    bytes += script.size() + chain.size() * (sizeof(Key) + sizeof(bitcoin::Amount));
  }
  return bytes;
}

std::uint64_t MapShardStore::resident_bytes() const {
  // Capacity actually held: hash bucket arrays, one heap node per
  // unordered_map element (payload + next pointer), per-script heap byte
  // buffers at capacity, and one red-black node per script-chain entry
  // (payload + 3 pointers + color word).
  std::uint64_t bytes =
      (by_outpoint_.bucket_count() + by_script_.bucket_count()) * sizeof(void*);
  for (const auto& [outpoint, entry] : by_outpoint_) {
    bytes += heap_block(sizeof(outpoint) + sizeof(Entry) + sizeof(void*));
    bytes += heap_block(entry.script.capacity());
  }
  for (const auto& [script, chain] : by_script_) {
    bytes += heap_block(sizeof(util::Bytes) + sizeof(std::map<Key, bitcoin::Amount>) +
                        sizeof(void*));
    bytes += heap_block(script.capacity());
    bytes += chain.size() *
             heap_block(sizeof(Key) + sizeof(bitcoin::Amount) + 4 * sizeof(void*));
  }
  return bytes;
}

}  // namespace icbtc::persist
