// Versioned, sectioned, CRC-guarded checkpoint envelope — the deterministic
// wire format the canister's checkpoint/restore subsystem writes to stable
// storage (and the attack lab replays across a simulated node restart).
//
// File layout (all integers little-endian):
//
//   magic   u32   "ICKP"
//   version u32   kCheckpointVersion
//   count   u32   number of sections
//   flags   u32   reserved, must be 0
//   count × section:
//     id    u32   strictly increasing across the file
//     len   u64   payload byte length
//     crc   u32   CRC-32 (IEEE reflected, poly 0xEDB88320) of the payload
//     payload
//   crc     u32   file CRC over every preceding byte
//
// The envelope is canonical: one byte stream per logical content. Writers
// emit sections in increasing id order and readers reject duplicates,
// non-monotone ids, nonzero flags, and trailing bytes, so two checkpoints of
// identical state `cmp` equal — which CI checks. Every decode failure is a
// typed CheckpointError; corruption can never surface as UB or a partially
// restored canister (the reader validates the whole envelope before any
// section payload is handed out).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/byteio.h"
#include "util/bytes.h"

namespace icbtc::persist {

inline constexpr std::uint32_t kCheckpointMagic = 0x504b4349;  // "ICKP" (LE)
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// Typed decode failure. Derives from util::DecodeError so generic snapshot
/// error handling keeps working; code() says what exactly was wrong.
class CheckpointError : public util::DecodeError {
 public:
  enum class Code {
    kIo,             // file could not be read/written
    kBadMagic,       // not a checkpoint file
    kBadVersion,     // produced by an unknown format version
    kTruncated,      // envelope runs past the end of the file
    kCrcMismatch,    // a section CRC or the file CRC does not match
    kBadSection,     // duplicate/non-monotone id, nonzero flags, missing section
    kTrailingBytes,  // bytes after the file CRC
    kMalformed,      // a section payload failed to decode
  };

  CheckpointError(Code code, const std::string& what)
      : util::DecodeError("checkpoint: " + what), code_(code) {}

  Code code() const { return code_; }

 private:
  Code code_;
};

const char* to_string(CheckpointError::Code code);

/// Accumulates sections and seals them into the canonical envelope.
class CheckpointWriter {
 public:
  /// Opens a new section; write its payload through the returned writer.
  /// Ids must strictly increase call to call.
  util::ByteWriter& begin_section(std::uint32_t id);

  /// Seals the envelope (section headers, per-section CRCs, file CRC).
  util::Bytes finish() &&;

 private:
  struct Section {
    std::uint32_t id = 0;
    util::ByteWriter payload;
  };
  std::vector<Section> sections_;
};

/// Parses and fully validates an envelope up front; section payloads are
/// only reachable after magic, version, structure, every section CRC, and
/// the file CRC have all checked out. Does not own the underlying bytes.
class CheckpointReader {
 public:
  /// Throws CheckpointError if the envelope is invalid in any way.
  explicit CheckpointReader(util::ByteSpan file);

  bool has_section(std::uint32_t id) const;
  /// Reader over one section's payload; throws kBadSection if absent.
  util::ByteReader section(std::uint32_t id) const;
  std::size_t section_count() const { return sections_.size(); }

 private:
  struct Section {
    std::uint32_t id = 0;
    util::ByteSpan payload;
  };
  std::vector<Section> sections_;
};

/// Reads a whole file; throws CheckpointError(kIo) on failure.
util::Bytes read_checkpoint_file(const std::string& path);
/// Writes bytes to a file atomically enough for the lab (truncate +
/// write + close); throws CheckpointError(kIo) on failure.
void write_checkpoint_file(const std::string& path, util::ByteSpan bytes);

}  // namespace icbtc::persist
