// Flat open-addressing UTXO arena: the compact backing store for one stable
// UTXO shard (the stable-memory layout the production canister keeps in
// `StableBTreeMap`s, flattened the way pastel's `uint256.h`-era flat sets
// store fixed-width 32-byte keys).
//
// Layout: live UTXOs are fixed-width 64-byte POD entries in one contiguous
// vector; scriptPubKey bytes live in an append-only byte arena and are
// interned per shard (every UTXO paying the same script shares one copy).
// Two power-of-two open-addressing tables (linear probing, tombstones) index
// the entries: outpoint → entry and script bytes → script record. Entries
// of one script form a doubly-linked chain threaded through the entry
// vector, kept sorted by (height desc, outpoint asc) — the canonical
// get_utxos response order — so reads need no per-node allocations at all.
//
// Versus the node-map layout this replaces (unordered_map nodes + heap
// TxOut byte vectors + a std::map per script), the arena cuts host bytes
// per UTXO by ~3-5x and makes residency *accountable*: live_bytes() is the
// exact byte cost of the live entries, resident_bytes() the exact capacity
// the backend holds, so the `utxo.shard.*` gauges report real numbers
// instead of node-overhead estimates.
//
// Tombstone compaction: erases mark slots/entries dead; when dead entries
// or dead script bytes cross deterministic thresholds the arena compacts
// in place (entry order preserved, tables rebuilt). All triggers are
// counts, never timing, so two arenas fed the same operation sequence are
// identical — including visit() order — which the checkpoint determinism
// tests pin.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "bitcoin/amount.h"
#include "bitcoin/transaction.h"
#include "util/bytes.h"
#include "util/function_ref.h"

namespace icbtc::persist {

class FlatUtxoArena {
 public:
  /// Sentinel index: no entry / no record / empty slot.
  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct Found {
    bitcoin::Amount value = 0;
    int height = 0;
  };
  struct Erased {
    bitcoin::Amount value = 0;
    int height = 0;
    std::uint32_t script_len = 0;
  };

  /// fn(outpoint, value, height) over one script's live UTXOs in canonical
  /// order (height desc, outpoint asc).
  using UtxoVisitor = util::FunctionRef<void(const bitcoin::OutPoint&, bitcoin::Amount, int)>;
  /// fn(outpoint, value, height, script) over every live entry, in entry
  /// index order — deterministic for a fixed operation history.
  using EntryVisitor =
      util::FunctionRef<void(const bitcoin::OutPoint&, bitcoin::Amount, int, util::ByteSpan)>;

  FlatUtxoArena();

  /// Inserts a UTXO; false if the outpoint already exists (first write wins,
  /// the pre-BIP30 duplicate rule the stable store tolerates).
  bool insert(const bitcoin::OutPoint& outpoint, bitcoin::Amount value, int height,
              util::ByteSpan script);

  /// Removes a UTXO, returning what was erased (script_len lets the caller
  /// maintain its modelled-footprint accounting); nullopt if absent.
  std::optional<Erased> erase(const bitcoin::OutPoint& outpoint);

  bool contains(const bitcoin::OutPoint& outpoint) const {
    return slot_index(outpoint) != kNil;
  }
  std::optional<Found> find(const bitcoin::OutPoint& outpoint) const;
  /// Copies the script of a live outpoint into `out`; false if absent.
  bool script_of(const bitcoin::OutPoint& outpoint, util::Bytes& out) const;

  void for_each_of_script(util::ByteSpan script, const UtxoVisitor& fn) const;
  /// Live UTXO count for one script (0 if the script is unknown).
  std::size_t script_utxo_count(util::ByteSpan script) const;
  void visit(const EntryVisitor& fn) const;

  std::size_t size() const { return live_entries_; }
  std::size_t distinct_scripts() const { return live_scripts_; }

  /// Exact bytes attributable to live data: live entries (64 B each), their
  /// interned script bytes, and one 4-byte slot per live entry and script.
  std::uint64_t live_bytes() const;
  /// Exact host capacity the arena holds (entry vector, script arena, both
  /// slot tables, script records — capacities, not sizes).
  std::uint64_t resident_bytes() const;

  /// Drops dead entries and dead script bytes, preserving live entry order,
  /// and rebuilds both tables. Runs automatically off deterministic
  /// dead-count thresholds; public for tests and explicit quiescing.
  void compact();
  std::uint64_t compactions() const { return compactions_; }

 private:
  /// 64-byte POD row. `live` doubles as padding; dead rows keep `next` as
  /// the free-list link.
  struct Entry {
    std::array<std::uint8_t, 32> txid;
    std::int64_t value = 0;  // before vout: keeps the i64 8-aligned, no padding
    std::uint32_t vout = 0;
    std::int32_t height = 0;
    std::uint32_t script_id = kNil;
    std::uint32_t next = kNil;  // chain link (live) / free-list link (dead)
    std::uint32_t prev = kNil;
    std::uint32_t live = 0;
  };
  static_assert(sizeof(Entry) == 64, "fixed-width POD entry");

  struct ScriptRec {
    std::uint64_t offset = 0;  // into script_bytes_
    std::uint32_t length = 0;
    std::uint32_t head = kNil;   // first chain entry; kNil when dead
    std::uint32_t count = 0;     // live entries on the chain
    std::uint32_t next_free = kNil;
  };

  static std::uint64_t hash_outpoint(const bitcoin::OutPoint& outpoint);
  static std::uint64_t hash_script(util::ByteSpan script);

  util::ByteSpan script_span(const ScriptRec& rec) const {
    return util::ByteSpan(script_bytes_.data() + rec.offset, rec.length);
  }
  bitcoin::OutPoint outpoint_of(const Entry& e) const {
    bitcoin::OutPoint op;
    std::copy(e.txid.begin(), e.txid.end(), op.txid.data.begin());
    op.vout = e.vout;
    return op;
  }

  /// Index of the outpoint's slot in outpoint_slots_, or kNil.
  std::uint32_t slot_index(const bitcoin::OutPoint& outpoint) const;
  std::uint32_t script_rec_index(util::ByteSpan script) const;

  void insert_outpoint_slot(const bitcoin::OutPoint& outpoint, std::uint32_t entry_idx);
  void insert_script_slot(util::ByteSpan script, std::uint32_t rec_idx);
  void maybe_grow_outpoint_table();
  void maybe_grow_script_table();
  void rehash_outpoint_table(std::size_t capacity);
  void rehash_script_table(std::size_t capacity);
  void maybe_compact();

  /// Links `idx` into its script's chain at the canonical position.
  void chain_link(ScriptRec& rec, std::uint32_t idx);
  void chain_unlink(ScriptRec& rec, std::uint32_t idx);
  /// True if entry a precedes entry b in canonical order.
  bool chain_before(const Entry& a, const Entry& b) const;

  std::vector<Entry> entries_;
  std::uint32_t free_entries_ = kNil;  // LIFO free list through Entry::next
  std::size_t live_entries_ = 0;
  std::size_t dead_entries_ = 0;

  std::vector<std::uint8_t> script_bytes_;
  std::uint64_t dead_script_bytes_ = 0;
  std::vector<ScriptRec> script_recs_;
  std::uint32_t free_recs_ = kNil;
  std::size_t live_scripts_ = 0;

  /// Slot value: kEmpty, kTombstone, or an index into entries_/script_recs_.
  static constexpr std::uint32_t kEmpty = 0xffffffffu;
  static constexpr std::uint32_t kTombstone = 0xfffffffeu;
  std::vector<std::uint32_t> outpoint_slots_;
  std::size_t outpoint_tombstones_ = 0;
  std::vector<std::uint32_t> script_slots_;
  std::size_t script_tombstones_ = 0;

  std::uint64_t compactions_ = 0;
};

}  // namespace icbtc::persist
