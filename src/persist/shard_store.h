// Backend interface for one stable-UTXO shard, plus its two
// implementations: the node-map layout the store launched with (kept as the
// differential oracle and the bench baseline) and the flat arena that
// replaces it on the production path.
//
// The contract every backend must honour — it is what makes backends,
// shard counts, and snapshot buffers interchangeable without disturbing a
// single response byte or metered instruction:
//   * insert() is first-write-wins per outpoint (pre-BIP30 duplicates).
//   * for_each_of_script() yields canonical get_utxos order:
//     height descending, then outpoint ascending.
//   * visit() order is deterministic for a fixed operation history (but
//     backend-specific; cross-backend comparison goes through the sorted
//     digest / checkpoint serialization).
//   * live_bytes()/resident_bytes() are exact accounting, not estimates:
//     live = bytes attributable to live entries, resident = host capacity
//     actually held. These feed the `utxo.shard.*` gauges.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <unordered_map>

#include "bitcoin/amount.h"
#include "bitcoin/transaction.h"
#include "persist/flat_utxo_arena.h"
#include "util/bytes.h"
#include "util/function_ref.h"

namespace icbtc::persist {

/// Which backend a UtxoIndex shard allocates.
enum class UtxoBackend {
  kArena,  // FlatUtxoArena: flat POD entries + interned script bytes
  kMap,    // node-based maps (the pre-arena layout; differential oracle)
};

const char* to_string(UtxoBackend backend);

class ShardStore {
 public:
  using Found = FlatUtxoArena::Found;
  using Erased = FlatUtxoArena::Erased;
  using UtxoVisitor = FlatUtxoArena::UtxoVisitor;
  using EntryVisitor = FlatUtxoArena::EntryVisitor;

  virtual ~ShardStore() = default;

  virtual bool insert(const bitcoin::OutPoint& outpoint, bitcoin::Amount value, int height,
                      util::ByteSpan script) = 0;
  virtual std::optional<Erased> erase(const bitcoin::OutPoint& outpoint) = 0;
  virtual bool contains(const bitcoin::OutPoint& outpoint) const = 0;
  virtual std::optional<Found> find(const bitcoin::OutPoint& outpoint) const = 0;
  virtual bool script_of(const bitcoin::OutPoint& outpoint, util::Bytes& out) const = 0;
  virtual void for_each_of_script(util::ByteSpan script, const UtxoVisitor& fn) const = 0;
  virtual std::size_t script_utxo_count(util::ByteSpan script) const = 0;
  virtual void visit(const EntryVisitor& fn) const = 0;
  virtual std::size_t size() const = 0;
  virtual std::size_t distinct_scripts() const = 0;
  virtual std::uint64_t live_bytes() const = 0;
  virtual std::uint64_t resident_bytes() const = 0;
  /// Releases slack capacity where the backend supports it (the arena's
  /// entry vector doubles during bulk loads; a checkpoint restore ends with
  /// an explicit compact so restored canisters start memory-tight). No-op
  /// for backends without reclaimable slack. Never changes live state.
  virtual void compact() {}
};

std::unique_ptr<ShardStore> make_shard_store(UtxoBackend backend);

/// Flat-arena backend: a thin forwarding shell over FlatUtxoArena.
class ArenaShardStore final : public ShardStore {
 public:
  bool insert(const bitcoin::OutPoint& outpoint, bitcoin::Amount value, int height,
              util::ByteSpan script) override {
    return arena_.insert(outpoint, value, height, script);
  }
  std::optional<Erased> erase(const bitcoin::OutPoint& outpoint) override {
    return arena_.erase(outpoint);
  }
  bool contains(const bitcoin::OutPoint& outpoint) const override {
    return arena_.contains(outpoint);
  }
  std::optional<Found> find(const bitcoin::OutPoint& outpoint) const override {
    return arena_.find(outpoint);
  }
  bool script_of(const bitcoin::OutPoint& outpoint, util::Bytes& out) const override {
    return arena_.script_of(outpoint, out);
  }
  void for_each_of_script(util::ByteSpan script, const UtxoVisitor& fn) const override {
    arena_.for_each_of_script(script, fn);
  }
  std::size_t script_utxo_count(util::ByteSpan script) const override {
    return arena_.script_utxo_count(script);
  }
  void visit(const EntryVisitor& fn) const override { arena_.visit(fn); }
  std::size_t size() const override { return arena_.size(); }
  std::size_t distinct_scripts() const override { return arena_.distinct_scripts(); }
  std::uint64_t live_bytes() const override { return arena_.live_bytes(); }
  std::uint64_t resident_bytes() const override { return arena_.resident_bytes(); }
  void compact() override { arena_.compact(); }

  const FlatUtxoArena& arena() const { return arena_; }
  FlatUtxoArena& arena() { return arena_; }

 private:
  FlatUtxoArena arena_;
};

/// Node-map backend: outpoint-keyed unordered_map plus a per-script ordered
/// map — the layout UtxoIndex used before the arena. Its byte gauges model
/// node and allocation overheads from the actual container shapes (bucket
/// counts, byte-vector capacities), so the arena comparison in
/// bench_checkpoint is against accounted numbers, not guesses.
class MapShardStore final : public ShardStore {
 public:
  bool insert(const bitcoin::OutPoint& outpoint, bitcoin::Amount value, int height,
              util::ByteSpan script) override;
  std::optional<Erased> erase(const bitcoin::OutPoint& outpoint) override;
  bool contains(const bitcoin::OutPoint& outpoint) const override {
    return by_outpoint_.contains(outpoint);
  }
  std::optional<Found> find(const bitcoin::OutPoint& outpoint) const override;
  bool script_of(const bitcoin::OutPoint& outpoint, util::Bytes& out) const override;
  void for_each_of_script(util::ByteSpan script, const UtxoVisitor& fn) const override;
  std::size_t script_utxo_count(util::ByteSpan script) const override;
  void visit(const EntryVisitor& fn) const override;
  std::size_t size() const override { return by_outpoint_.size(); }
  std::size_t distinct_scripts() const override { return by_script_.size(); }
  std::uint64_t live_bytes() const override;
  std::uint64_t resident_bytes() const override;

 private:
  struct Entry {
    util::Bytes script;
    bitcoin::Amount value = 0;
    int height = 0;
  };
  /// Script-chain key, ordered canonically (height desc, outpoint asc).
  struct Key {
    int neg_height;
    bitcoin::OutPoint outpoint;
    auto operator<=>(const Key&) const = default;
  };
  struct ScriptBytesHash {
    std::size_t operator()(const util::Bytes& b) const noexcept;
  };

  std::unordered_map<bitcoin::OutPoint, Entry> by_outpoint_;
  std::unordered_map<util::Bytes, std::map<Key, bitcoin::Amount>, ScriptBytesHash> by_script_;
};

}  // namespace icbtc::persist
