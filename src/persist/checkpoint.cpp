#include "persist/checkpoint.h"

#include <cstdio>

#include "persist/crc32.h"

namespace icbtc::persist {

const char* to_string(CheckpointError::Code code) {
  switch (code) {
    case CheckpointError::Code::kIo: return "io";
    case CheckpointError::Code::kBadMagic: return "bad magic";
    case CheckpointError::Code::kBadVersion: return "bad version";
    case CheckpointError::Code::kTruncated: return "truncated";
    case CheckpointError::Code::kCrcMismatch: return "crc mismatch";
    case CheckpointError::Code::kBadSection: return "bad section";
    case CheckpointError::Code::kTrailingBytes: return "trailing bytes";
    case CheckpointError::Code::kMalformed: return "malformed";
  }
  return "?";
}

util::ByteWriter& CheckpointWriter::begin_section(std::uint32_t id) {
  if (!sections_.empty() && sections_.back().id >= id) {
    throw CheckpointError(CheckpointError::Code::kBadSection,
                          "section ids must strictly increase");
  }
  sections_.emplace_back();
  sections_.back().id = id;
  return sections_.back().payload;
}

util::Bytes CheckpointWriter::finish() && {
  util::ByteWriter w;
  w.u32le(kCheckpointMagic);
  w.u32le(kCheckpointVersion);
  w.u32le(static_cast<std::uint32_t>(sections_.size()));
  w.u32le(0);  // flags
  for (const Section& s : sections_) {
    w.u32le(s.id);
    w.u64le(s.payload.size());
    w.u32le(crc32(s.payload.data()));
    w.bytes(s.payload.data());
  }
  w.u32le(crc32(w.data()));
  return std::move(w).take();
}

namespace {

constexpr std::size_t kEnvelopeHeader = 16;   // magic + version + count + flags
constexpr std::size_t kSectionHeader = 16;    // id + len + crc

std::uint32_t read_u32(util::ByteSpan file, std::size_t at) {
  return static_cast<std::uint32_t>(file[at]) | (static_cast<std::uint32_t>(file[at + 1]) << 8) |
         (static_cast<std::uint32_t>(file[at + 2]) << 16) |
         (static_cast<std::uint32_t>(file[at + 3]) << 24);
}

std::uint64_t read_u64(util::ByteSpan file, std::size_t at) {
  return static_cast<std::uint64_t>(read_u32(file, at)) |
         (static_cast<std::uint64_t>(read_u32(file, at + 4)) << 32);
}

}  // namespace

CheckpointReader::CheckpointReader(util::ByteSpan file) {
  using Code = CheckpointError::Code;
  if (file.size() < kEnvelopeHeader + 4) throw CheckpointError(Code::kTruncated, "short file");
  if (read_u32(file, 0) != kCheckpointMagic) throw CheckpointError(Code::kBadMagic, "bad magic");
  std::uint32_t version = read_u32(file, 4);
  if (version != kCheckpointVersion) {
    throw CheckpointError(Code::kBadVersion,
                          "unsupported version " + std::to_string(version));
  }
  std::uint32_t count = read_u32(file, 8);
  if (read_u32(file, 12) != 0) throw CheckpointError(Code::kBadSection, "nonzero flags");

  // Walk the section table with explicit bounds checks; nothing is trusted
  // until the file CRC has been verified too.
  std::size_t pos = kEnvelopeHeader;
  sections_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    if (file.size() - pos < kSectionHeader + 4) {  // +4: the file CRC must still fit
      throw CheckpointError(Code::kTruncated, "section header past end of file");
    }
    Section s;
    s.id = read_u32(file, pos);
    std::uint64_t len = read_u64(file, pos + 4);
    std::uint32_t crc = read_u32(file, pos + 12);
    pos += kSectionHeader;
    if (len > file.size() - pos - 4) {
      throw CheckpointError(Code::kTruncated, "section payload past end of file");
    }
    if (!sections_.empty() && sections_.back().id >= s.id) {
      throw CheckpointError(Code::kBadSection, "section ids not strictly increasing");
    }
    s.payload = file.subspan(pos, static_cast<std::size_t>(len));
    pos += static_cast<std::size_t>(len);
    if (crc32(s.payload) != crc) {
      throw CheckpointError(Code::kCrcMismatch,
                            "section " + std::to_string(s.id) + " crc mismatch");
    }
    sections_.push_back(s);
  }

  if (file.size() - pos < 4) throw CheckpointError(Code::kTruncated, "missing file crc");
  if (crc32(file.subspan(0, pos)) != read_u32(file, pos)) {
    throw CheckpointError(Code::kCrcMismatch, "file crc mismatch");
  }
  pos += 4;
  if (pos != file.size()) throw CheckpointError(Code::kTrailingBytes, "trailing bytes");
}

bool CheckpointReader::has_section(std::uint32_t id) const {
  for (const Section& s : sections_) {
    if (s.id == id) return true;
  }
  return false;
}

util::ByteReader CheckpointReader::section(std::uint32_t id) const {
  for (const Section& s : sections_) {
    if (s.id == id) return util::ByteReader(s.payload);
  }
  throw CheckpointError(CheckpointError::Code::kBadSection,
                        "missing section " + std::to_string(id));
}

util::Bytes read_checkpoint_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw CheckpointError(CheckpointError::Code::kIo, "cannot open " + path);
  }
  util::Bytes out;
  std::uint8_t buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.insert(out.end(), buf, buf + n);
  bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) throw CheckpointError(CheckpointError::Code::kIo, "read error on " + path);
  return out;
}

void write_checkpoint_file(const std::string& path, util::ByteSpan bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw CheckpointError(CheckpointError::Code::kIo, "cannot create " + path);
  }
  bool failed = std::fwrite(bytes.data(), 1, bytes.size(), f) != bytes.size();
  failed |= std::fclose(f) != 0;
  if (failed) throw CheckpointError(CheckpointError::Code::kIo, "write error on " + path);
}

}  // namespace icbtc::persist
