// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the per-section
// integrity check of the checkpoint wire format. Not a cryptographic MAC:
// it detects torn writes, truncation, and bit rot, which is exactly what a
// stable-memory restore needs to refuse before replaying state.
#pragma once

#include <cstdint>

#include "util/bytes.h"

namespace icbtc::persist {

/// One-shot CRC-32 of `data`. `seed` chains incremental computations:
/// crc32(ab) == crc32(b, crc32(a)).
std::uint32_t crc32(util::ByteSpan data, std::uint32_t seed = 0);

}  // namespace icbtc::persist
