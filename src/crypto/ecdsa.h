// ECDSA over secp256k1 with RFC 6979 deterministic nonces and low-s
// normalization (BIP-62), matching what Bitcoin expects of signatures.
#pragma once

#include <optional>

#include "crypto/secp256k1.h"
#include "util/bytes.h"

namespace icbtc::crypto {

struct Signature {
  U256 r;
  U256 s;

  /// 64-byte compact encoding (r || s, big-endian).
  util::Bytes compact() const;
  static std::optional<Signature> from_compact(util::ByteSpan data);

  /// DER encoding as used in Bitcoin scripts.
  util::Bytes der() const;
  static std::optional<Signature> from_der(util::ByteSpan data);

  bool operator==(const Signature&) const = default;
};

class PrivateKey {
 public:
  /// Throws std::invalid_argument unless 0 < secret < n.
  explicit PrivateKey(const U256& secret);

  /// Derives a key from seed bytes (hashed to the scalar field).
  static PrivateKey from_seed(util::ByteSpan seed);

  const U256& secret() const { return secret_; }
  AffinePoint public_key() const;

  /// Signs a 32-byte message digest. Deterministic (RFC 6979).
  Signature sign(const util::Hash256& digest) const;

 private:
  U256 secret_;
};

/// Verifies `sig` over `digest` under `pubkey`. Rejects high-s signatures.
bool verify(const AffinePoint& pubkey, const util::Hash256& digest, const Signature& sig);

/// RFC 6979 nonce derivation (HMAC-SHA256 variant), exposed for tests and for
/// the threshold-signing simulation, which derives shared nonces the same way.
U256 rfc6979_nonce(const U256& secret, const util::Hash256& digest, std::uint32_t counter = 0);

}  // namespace icbtc::crypto
