// ECDSA over secp256k1 with RFC 6979 deterministic nonces and low-s
// normalization (BIP-62), matching what Bitcoin expects of signatures.
#pragma once

#include <optional>

#include "crypto/secp256k1.h"
#include "util/bytes.h"

namespace icbtc::crypto {

struct Signature {
  U256 r;
  U256 s;

  /// 64-byte compact encoding (r || s, big-endian).
  util::Bytes compact() const;
  static std::optional<Signature> from_compact(util::ByteSpan data);

  /// DER encoding as used in Bitcoin scripts.
  util::Bytes der() const;
  static std::optional<Signature> from_der(util::ByteSpan data);

  bool operator==(const Signature&) const = default;
};

class PrivateKey {
 public:
  /// Throws std::invalid_argument unless 0 < secret < n.
  explicit PrivateKey(const U256& secret);

  /// Derives a key from seed bytes (hashed to the scalar field).
  static PrivateKey from_seed(util::ByteSpan seed);

  const U256& secret() const { return secret_; }
  AffinePoint public_key() const;

  /// Signs a 32-byte message digest. Deterministic (RFC 6979).
  Signature sign(const util::Hash256& digest) const;

 private:
  U256 secret_;
};

/// Verifies `sig` over `digest` under `pubkey`. Rejects high-s signatures.
bool verify(const AffinePoint& pubkey, const util::Hash256& digest, const Signature& sig);

/// One signature of a batch verification. Unlike plain ECDSA verification,
/// batch verification needs the nonce point R itself (not just r = R.x mod
/// n); threshold signing has it — the presignature publishes R. `big_r` must
/// be the point matching the final signature: if s was negated for low-s
/// normalization the satisfying point is the negation of the presignature's R
/// (the combiner reports which).
struct BatchVerifyEntry {
  AffinePoint pubkey;
  util::Hash256 digest;
  Signature sig;
  AffinePoint big_r;
};

/// Verifies every entry with one multi-scalar multiplication instead of two
/// point multiplications each: checks Σ c_i·(s_i·R_i − z_i·G − r_i·P_i) = O
/// for deterministic pseudo-random 128-bit coefficients c_i derived by
/// hashing the whole batch (an invalid batch passes with probability
/// ~2^-128). Per-entry range/low-s/consistency checks match verify().
/// Empty batches verify trivially.
bool batch_verify(const std::vector<BatchVerifyEntry>& entries);

/// Batch entry whose public key is additively derived from a shared master
/// key: P_i = M + tweak_i·G (BIP32-style non-hardened derivation, and exactly
/// how threshold-service derivation paths work). The caller asserts that
/// relationship; the verifier never materializes P_i.
struct TweakedBatchVerifyEntry {
  U256 tweak;
  util::Hash256 digest;
  Signature sig;
  AffinePoint big_r;
};

/// batch_verify for signatures under keys derived from one master key. The
/// derived-key terms fold into the master and generator terms by linearity
/// (r_i·P_i = r_i·M + r_i·tweak_i·G), so the multi-scalar multiplication has
/// N + 2 points — with only the short 128-bit c_i on the per-signature
/// points — no matter how many distinct derivation paths the batch spans.
/// Same soundness bound and per-entry checks as batch_verify.
bool batch_verify_tweaked(const AffinePoint& master_pubkey,
                          const std::vector<TweakedBatchVerifyEntry>& entries);

/// RFC 6979 nonce derivation (HMAC-SHA256 variant), exposed for tests and for
/// the threshold-signing simulation, which derives shared nonces the same way.
U256 rfc6979_nonce(const U256& secret, const util::Hash256& digest, std::uint32_t counter = 0);

}  // namespace icbtc::crypto
