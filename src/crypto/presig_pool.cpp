#include "crypto/presig_pool.h"

#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"

namespace icbtc::crypto {

PresignaturePool::PresignaturePool(const ThresholdEcdsaDealer& dealer, PresigPoolConfig config,
                                   util::Rng rng)
    : dealer_(dealer), config_(config), rng_(rng) {}

void PresignaturePool::set_metrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  if (registry == nullptr) {
    depth_gauge_ = nullptr;
    dealt_counter_ = nullptr;
    consumed_counter_ = nullptr;
    refills_counter_ = nullptr;
    stalls_counter_ = nullptr;
    return;
  }
  depth_gauge_ = &registry->gauge("tecdsa.pool.depth");
  dealt_counter_ = &registry->counter("tecdsa.pool.dealt");
  consumed_counter_ = &registry->counter("tecdsa.pool.consumed");
  refills_counter_ = &registry->counter("tecdsa.pool.refills");
  stalls_counter_ = &registry->counter("tecdsa.pool.exhaustion_stalls");
  depth_gauge_->set(static_cast<std::int64_t>(size()));
}

std::size_t PresignaturePool::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return ready_.size();
}

void PresignaturePool::note_depth(std::size_t depth) {
  if (depth_gauge_ != nullptr) depth_gauge_->set(static_cast<std::int64_t>(depth));
}

DealtPresignature PresignaturePool::deal_one_locked() {
  DealtPresignature out;
  out.seq = next_seq_++;
  auto [pub, shares] = dealer_.deal_presignature(rng_);
  out.pub = pub;
  out.shares = std::move(shares);
  dealt_total_.fetch_add(1, std::memory_order_relaxed);
  if (dealt_counter_ != nullptr) dealt_counter_->inc();
  return out;
}

DealtPresignature PresignaturePool::take() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!ready_.empty()) {
      DealtPresignature out = std::move(ready_.front());
      ready_.pop_front();
      consumed_total_.fetch_add(1, std::memory_order_relaxed);
      if (consumed_counter_ != nullptr) consumed_counter_->inc();
      note_depth(ready_.size());
      return out;
    }
  }
  // Pool exhausted: fall back to online dealing (the documented backpressure
  // policy), serialized behind any in-flight refill so the deal sequence
  // stays intact.
  exhaustion_stalls_.fetch_add(1, std::memory_order_relaxed);
  if (stalls_counter_ != nullptr) stalls_counter_->inc();
  std::lock_guard<std::mutex> dl(deal_mu_);
  {
    // A refill may have landed while we waited for the deal mutex; consume
    // from the queue first to preserve FIFO order over the deal sequence.
    std::lock_guard<std::mutex> lk(mu_);
    if (!ready_.empty()) {
      DealtPresignature out = std::move(ready_.front());
      ready_.pop_front();
      consumed_total_.fetch_add(1, std::memory_order_relaxed);
      if (consumed_counter_ != nullptr) consumed_counter_->inc();
      note_depth(ready_.size());
      return out;
    }
  }
  DealtPresignature out = deal_one_locked();
  consumed_total_.fetch_add(1, std::memory_order_relaxed);
  if (consumed_counter_ != nullptr) consumed_counter_->inc();
  return out;
}

void PresignaturePool::refill() {
  if (config_.depth == 0) return;
  std::lock_guard<std::mutex> dl(deal_mu_);
  std::size_t have;
  {
    std::lock_guard<std::mutex> lk(mu_);
    have = ready_.size();
  }
  if (have >= config_.depth) return;
  const std::size_t need = config_.depth - have;

  obs::ScopedSpan span(tracer_, "tecdsa.presig.deal", "crypto");
  span.attr("count", static_cast<std::uint64_t>(need));

  // Phase 1 (serial, RNG-ordered): draw every deal's randomness. Phase 2
  // (pure, parallelizable): the expensive point/inversion/share work.
  std::vector<PresigRandomness> randomness;
  std::vector<std::uint64_t> seqs;
  randomness.reserve(need);
  seqs.reserve(need);
  for (std::size_t i = 0; i < need; ++i) {
    randomness.push_back(dealer_.draw_presig_randomness(rng_));
    seqs.push_back(next_seq_++);
  }

  std::vector<DealtPresignature> dealt(need);
  std::shared_ptr<parallel::ThreadPool> pool_ref =
      config_.parallel_refill ? parallel::shared_pool_ref() : nullptr;
  parallel::parallel_for(pool_ref.get(), need, [&](std::size_t i) {
    auto [pub, shares] = dealer_.deal_presignature_from(randomness[i]);
    dealt[i] = DealtPresignature{seqs[i], pub, std::move(shares), false};
  });

  std::size_t depth_after;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& d : dealt) ready_.push_back(std::move(d));
    depth_after = ready_.size();
  }
  dealt_total_.fetch_add(need, std::memory_order_relaxed);
  refills_.fetch_add(1, std::memory_order_relaxed);
  if (dealt_counter_ != nullptr) dealt_counter_->inc(need);
  if (refills_counter_ != nullptr) refills_counter_->inc();
  note_depth(depth_after);
  span.attr("depth_after", static_cast<std::uint64_t>(depth_after));
}

void PresignaturePool::maybe_refill() {
  if (config_.depth == 0) return;
  if (size() > config_.low_watermark) return;
  refill();
}

}  // namespace icbtc::crypto
