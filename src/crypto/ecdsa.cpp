#include "crypto/ecdsa.h"

#include <cstring>
#include <map>

#include "crypto/sha256.h"

namespace icbtc::crypto {

namespace {

// n/2, the high-s threshold.
const U256& half_order() {
  static const U256 h = curve_order().shifted_right(1);
  return h;
}

void push_be32(util::Bytes& out, const U256& v) {
  auto b = v.to_be_bytes();
  out.insert(out.end(), b.data.begin(), b.data.end());
}

}  // namespace

util::Bytes Signature::compact() const {
  util::Bytes out;
  out.reserve(64);
  push_be32(out, r);
  push_be32(out, s);
  return out;
}

std::optional<Signature> Signature::from_compact(util::ByteSpan data) {
  if (data.size() != 64) return std::nullopt;
  Signature sig;
  sig.r = U256::from_be_bytes(data.subspan(0, 32));
  sig.s = U256::from_be_bytes(data.subspan(32, 32));
  return sig;
}

namespace {
// Minimal positive DER integer encoding of a U256.
void der_int(util::Bytes& out, const U256& v) {
  auto be = v.to_be_bytes();
  std::size_t start = 0;
  while (start < 31 && be.data[start] == 0) ++start;
  bool pad = (be.data[start] & 0x80) != 0;
  std::size_t len = 32 - start + (pad ? 1 : 0);
  out.push_back(0x02);
  out.push_back(static_cast<std::uint8_t>(len));
  if (pad) out.push_back(0x00);
  out.insert(out.end(), be.data.begin() + static_cast<std::ptrdiff_t>(start), be.data.end());
}

std::optional<U256> parse_der_int(util::ByteSpan data, std::size_t& pos) {
  if (pos + 2 > data.size() || data[pos] != 0x02) return std::nullopt;
  std::size_t len = data[pos + 1];
  pos += 2;
  if (len == 0 || len > 33 || pos + len > data.size()) return std::nullopt;
  util::Bytes be(32, 0);
  std::size_t skip = 0;
  if (len == 33) {
    if (data[pos] != 0x00) return std::nullopt;
    skip = 1;
  }
  std::memcpy(be.data() + (32 - (len - skip)), data.data() + pos + skip, len - skip);
  pos += len;
  return U256::from_be_bytes(be);
}
}  // namespace

util::Bytes Signature::der() const {
  util::Bytes body;
  der_int(body, r);
  der_int(body, s);
  util::Bytes out;
  out.reserve(body.size() + 2);
  out.push_back(0x30);
  out.push_back(static_cast<std::uint8_t>(body.size()));
  util::append(out, body);
  return out;
}

std::optional<Signature> Signature::from_der(util::ByteSpan data) {
  if (data.size() < 8 || data[0] != 0x30 || data[1] != data.size() - 2) return std::nullopt;
  std::size_t pos = 2;
  auto r = parse_der_int(data, pos);
  if (!r) return std::nullopt;
  auto s = parse_der_int(data, pos);
  if (!s || pos != data.size()) return std::nullopt;
  return Signature{*r, *s};
}

PrivateKey::PrivateKey(const U256& secret) : secret_(secret) {
  if (secret.is_zero() || secret >= curve_order()) {
    throw std::invalid_argument("PrivateKey: secret out of range");
  }
}

PrivateKey PrivateKey::from_seed(util::ByteSpan seed) {
  // Hash-and-increment until the candidate lands in [1, n); overwhelmingly
  // the first candidate works.
  util::Bytes material(seed.begin(), seed.end());
  material.push_back(0);
  for (;;) {
    util::Hash256 h = Sha256::hash(material);
    U256 candidate = U256::from_be_bytes(h.span());
    if (!candidate.is_zero() && candidate < curve_order()) return PrivateKey(candidate);
    material.back()++;
  }
}

AffinePoint PrivateKey::public_key() const { return generator_mul(secret_); }

U256 rfc6979_nonce(const U256& secret, const util::Hash256& digest, std::uint32_t counter) {
  // RFC 6979 §3.2 with HMAC-SHA256; qlen == hlen == 256 so bits2octets is a
  // reduction mod n.
  const ModCtx& sc = scalar_ctx();
  auto x = secret.to_be_bytes();
  U256 z = sc.reduce(U256::from_be_bytes(digest.span()));
  auto h1 = z.to_be_bytes();

  util::Bytes v(32, 0x01);
  util::Bytes k(32, 0x00);

  auto mac = [&](std::uint8_t sep, bool with_material) {
    util::Bytes msg(v.begin(), v.end());
    msg.push_back(sep);
    if (with_material) {
      msg.insert(msg.end(), x.data.begin(), x.data.end());
      msg.insert(msg.end(), h1.data.begin(), h1.data.end());
    }
    auto out = hmac_sha256(util::ByteSpan(k.data(), k.size()), util::ByteSpan(msg.data(), msg.size()));
    k.assign(out.data.begin(), out.data.end());
    out = hmac_sha256(util::ByteSpan(k.data(), k.size()), util::ByteSpan(v.data(), v.size()));
    v.assign(out.data.begin(), out.data.end());
  };

  mac(0x00, true);
  mac(0x01, true);

  std::uint32_t produced = 0;
  for (;;) {
    auto t = hmac_sha256(util::ByteSpan(k.data(), k.size()), util::ByteSpan(v.data(), v.size()));
    v.assign(t.data.begin(), t.data.end());
    U256 candidate = U256::from_be_bytes(util::ByteSpan(v.data(), v.size()));
    if (!candidate.is_zero() && candidate < curve_order()) {
      if (produced == counter) return candidate;
      ++produced;
    }
    mac(0x00, false);
  }
}

Signature PrivateKey::sign(const util::Hash256& digest) const {
  const ModCtx& sc = scalar_ctx();
  U256 z = sc.reduce(U256::from_be_bytes(digest.span()));
  for (std::uint32_t counter = 0;; ++counter) {
    U256 k = rfc6979_nonce(secret_, digest, counter);
    AffinePoint rp = generator_mul(k);
    U256 r = sc.reduce(rp.x);
    if (r.is_zero()) continue;
    U256 kinv = sc.inv(k);
    U256 s = sc.mul(kinv, sc.add(z, sc.mul(r, secret_)));
    if (s.is_zero()) continue;
    if (s > half_order()) s = curve_order() - s;
    return Signature{r, s};
  }
}

bool verify(const AffinePoint& pubkey, const util::Hash256& digest, const Signature& sig) {
  if (pubkey.infinity || !pubkey.on_curve()) return false;
  const ModCtx& sc = scalar_ctx();
  if (sig.r.is_zero() || sig.r >= curve_order()) return false;
  if (sig.s.is_zero() || sig.s >= curve_order()) return false;
  if (sig.s > half_order()) return false;  // enforce low-s
  U256 z = sc.reduce(U256::from_be_bytes(digest.span()));
  U256 sinv = sc.inv(sig.s);
  U256 u1 = sc.mul(z, sinv);
  U256 u2 = sc.mul(sig.r, sinv);
  AffinePoint point = double_mul(u1, u2, pubkey);
  if (point.infinity) return false;
  return sc.reduce(point.x) == sig.r;
}

bool batch_verify(const std::vector<BatchVerifyEntry>& entries) {
  if (entries.empty()) return true;
  const ModCtx& sc = scalar_ctx();
  // Cheap per-entry checks, identical in effect to verify()'s preamble, plus
  // consistency of the claimed nonce point with the signature's r.
  for (const auto& e : entries) {
    if (e.pubkey.infinity || !e.pubkey.on_curve()) return false;
    if (e.sig.r.is_zero() || e.sig.r >= curve_order()) return false;
    if (e.sig.s.is_zero() || e.sig.s >= curve_order()) return false;
    if (e.sig.s > half_order()) return false;
    if (e.big_r.infinity || !e.big_r.on_curve()) return false;
    if (sc.reduce(e.big_r.x) != e.sig.r) return false;
  }

  // Batch coefficients: hash the whole batch into a seed, then c_i =
  // first 128 bits of H(seed || i). Deterministic (no RNG state consumed),
  // and an adversary fixing the batch cannot steer the c_i.
  Sha256 seed_hash;
  const char tag[] = "icbtc-batch-verify";
  seed_hash.update(util::ByteSpan(reinterpret_cast<const std::uint8_t*>(tag), sizeof(tag) - 1));
  for (const auto& e : entries) {
    seed_hash.update(e.sig.r.to_be_bytes().span());
    seed_hash.update(e.sig.s.to_be_bytes().span());
    seed_hash.update(e.digest.span());
    auto pk = e.pubkey.compressed();
    seed_hash.update(util::ByteSpan(pk.data(), pk.size()));
    auto rp = e.big_r.compressed();
    seed_hash.update(util::ByteSpan(rp.data(), rp.size()));
  }
  util::Hash256 seed = seed_hash.finalize();

  // Check Σ c_i·R_i − (Σ c_i·u1_i)·G − Σ_P (Σ_{i: P_i=P} c_i·u2_i)·P = O,
  // where u1 = z·s^-1 and u2 = r·s^-1 (the textbook R = u1·G + u2·P form).
  // This shape keeps the per-signature coefficient at the raw 128-bit c_i —
  // each R_i contributes bucket additions in only half the Pippenger rounds
  // — and collapses the generator term always and the pubkey terms per
  // distinct key (threshold wallets sign many requests under one derived
  // key). The s^-1 all come from one batched Montgomery inversion.
  const std::size_t n = entries.size();
  std::vector<U256> prefix(n + 1, U256(1));
  for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = sc.mul(prefix[i], entries[i].sig.s);
  U256 inv_all = sc.inv(prefix[n]);
  std::vector<U256> sinv(n);
  for (std::size_t i = n; i-- > 0;) {
    sinv[i] = sc.mul(inv_all, prefix[i]);
    inv_all = sc.mul(inv_all, entries[i].sig.s);
  }

  std::vector<U256> scalars;
  std::vector<AffinePoint> points;
  scalars.reserve(n + 8);
  points.reserve(n + 8);
  U256 g_coeff(0);
  std::map<util::Bytes, std::pair<AffinePoint, U256>> pubkey_terms;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& e = entries[i];
    Sha256 ci_hash;
    ci_hash.update(seed.span());
    std::uint8_t idx[8];
    for (int b = 0; b < 8; ++b) idx[b] = static_cast<std::uint8_t>(i >> (8 * (7 - b)));
    ci_hash.update(util::ByteSpan(idx, sizeof(idx)));
    util::Hash256 ci_bytes = ci_hash.finalize();
    U256 c = U256::from_be_bytes(ci_bytes.span());
    c.limb[2] = 0;  // truncate to 128 bits
    c.limb[3] = 0;
    if (c.is_zero()) c = U256(1);

    U256 z = sc.reduce(U256::from_be_bytes(e.digest.span()));
    g_coeff = sc.add(g_coeff, sc.mul(c, sc.mul(z, sinv[i])));
    scalars.push_back(c);
    points.push_back(e.big_r);
    auto& term = pubkey_terms[e.pubkey.compressed()];
    term.first = e.pubkey;
    term.second = sc.add(term.second, sc.mul(c, sc.mul(e.sig.r, sinv[i])));
  }
  scalars.push_back(sc.neg(g_coeff));
  points.push_back(generator());
  for (const auto& [bytes, term] : pubkey_terms) {
    scalars.push_back(sc.neg(term.second));
    points.push_back(term.first);
  }

  return multi_mul(scalars, points).infinity;
}

bool batch_verify_tweaked(const AffinePoint& master_pubkey,
                          const std::vector<TweakedBatchVerifyEntry>& entries) {
  if (entries.empty()) return true;
  if (master_pubkey.infinity || !master_pubkey.on_curve()) return false;
  const ModCtx& sc = scalar_ctx();
  for (const auto& e : entries) {
    if (e.sig.r.is_zero() || e.sig.r >= curve_order()) return false;
    if (e.sig.s.is_zero() || e.sig.s >= curve_order()) return false;
    if (e.sig.s > half_order()) return false;
    if (e.big_r.infinity || !e.big_r.on_curve()) return false;
    if (sc.reduce(e.big_r.x) != e.sig.r) return false;
  }

  Sha256 seed_hash;
  const char tag[] = "icbtc-batch-verify-tweaked";
  seed_hash.update(util::ByteSpan(reinterpret_cast<const std::uint8_t*>(tag), sizeof(tag) - 1));
  auto mp = master_pubkey.compressed();
  seed_hash.update(util::ByteSpan(mp.data(), mp.size()));
  for (const auto& e : entries) {
    seed_hash.update(e.tweak.to_be_bytes().span());
    seed_hash.update(e.sig.r.to_be_bytes().span());
    seed_hash.update(e.sig.s.to_be_bytes().span());
    seed_hash.update(e.digest.span());
    auto rp = e.big_r.compressed();
    seed_hash.update(util::ByteSpan(rp.data(), rp.size()));
  }
  util::Hash256 seed = seed_hash.finalize();

  // With P_i = M + tweak_i·G, the per-entry pubkey term folds away:
  //   Σ c_i·R_i − (Σ c_i·(u1_i + u2_i·tweak_i))·G − (Σ c_i·u2_i)·M = O.
  const std::size_t n = entries.size();
  std::vector<U256> prefix(n + 1, U256(1));
  for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = sc.mul(prefix[i], entries[i].sig.s);
  U256 inv_all = sc.inv(prefix[n]);
  std::vector<U256> sinv(n);
  for (std::size_t i = n; i-- > 0;) {
    sinv[i] = sc.mul(inv_all, prefix[i]);
    inv_all = sc.mul(inv_all, entries[i].sig.s);
  }

  std::vector<U256> scalars;
  std::vector<AffinePoint> points;
  scalars.reserve(n + 2);
  points.reserve(n + 2);
  U256 g_coeff(0);
  U256 m_coeff(0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& e = entries[i];
    Sha256 ci_hash;
    ci_hash.update(seed.span());
    std::uint8_t idx[8];
    for (int b = 0; b < 8; ++b) idx[b] = static_cast<std::uint8_t>(i >> (8 * (7 - b)));
    ci_hash.update(util::ByteSpan(idx, sizeof(idx)));
    util::Hash256 ci_bytes = ci_hash.finalize();
    U256 c = U256::from_be_bytes(ci_bytes.span());
    c.limb[2] = 0;  // truncate to 128 bits
    c.limb[3] = 0;
    if (c.is_zero()) c = U256(1);

    U256 z = sc.reduce(U256::from_be_bytes(e.digest.span()));
    U256 u2 = sc.mul(e.sig.r, sinv[i]);
    U256 u1_plus = sc.add(sc.mul(z, sinv[i]), sc.mul(u2, e.tweak));
    g_coeff = sc.add(g_coeff, sc.mul(c, u1_plus));
    m_coeff = sc.add(m_coeff, sc.mul(c, u2));
    scalars.push_back(c);
    points.push_back(e.big_r);
  }
  scalars.push_back(sc.neg(g_coeff));
  points.push_back(generator());
  scalars.push_back(sc.neg(m_coeff));
  points.push_back(master_pubkey);

  return multi_mul(scalars, points).infinity;
}

}  // namespace icbtc::crypto
