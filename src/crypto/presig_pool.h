// Offline presignature pool for the threshold-ECDSA service.
//
// On the IC the expensive part of threshold ECDSA — generating the
// "quadruple" presignature material — runs as a background MPC between
// consensus rounds, and sign_with_ecdsa requests only pay the cheap online
// phase (partial signatures + recombination). This pool reproduces that
// split: presignatures are dealt ahead of demand, in batches, optionally on
// the process-wide parallel::ThreadPool, and consumed FIFO by signing
// requests.
//
// Determinism contract: all dealing — prefill, refill batches, and the
// exhaustion fallback — is serialized under one deal mutex and draws from
// one private RNG stream in deal-sequence order, so the k-th presignature
// ever dealt is a pure function of (pool seed, k) regardless of when refills
// run or how large their batches are. Consumption is strict FIFO over that
// sequence, so for a single-threaded caller the j-th take() always returns
// presignature j and the resulting signatures are byte-identical across pool
// depths, watermarks, and refill timing. (Refill batches split randomness
// drawing from computation: draws happen serially under the deal mutex,
// the pure per-presignature computation may then fan out across the shared
// thread pool.)
//
// Backpressure policy (the documented choice): a take() that finds the pool
// empty does NOT fail or block indefinitely — it falls back to dealing one
// presignature online, inside the call, under the deal mutex. A burst larger
// than the pool depth therefore degrades to the pre-pool per-request cost
// instead of stalling, and the exhaustion is visible in the
// tecdsa.pool.exhaustion_stalls counter.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>

#include "crypto/threshold_ecdsa.h"

namespace icbtc::obs {
class Counter;
class Gauge;
class MetricsRegistry;
class Tracer;
}  // namespace icbtc::obs

namespace icbtc::crypto {

struct PresigPoolConfig {
  /// Target number of precomputed presignatures. 0 disables precomputation:
  /// every take() deals online (the pre-pool behaviour).
  std::size_t depth = 0;
  /// maybe_refill() tops the pool back up to `depth` once the stock falls
  /// below this. 0 means "only refill when empty".
  std::size_t low_watermark = 0;
  /// Fan the pure per-presignature computation of a refill batch out over
  /// the process-wide thread pool when one is installed.
  bool parallel_refill = true;
};

class PresignaturePool {
 public:
  /// `dealer` must outlive the pool. `seed` seeds the pool's private RNG
  /// stream (the deal sequence is a pure function of it).
  PresignaturePool(const ThresholdEcdsaDealer& dealer, PresigPoolConfig config,
                   util::Rng rng);

  PresignaturePool(const PresignaturePool&) = delete;
  PresignaturePool& operator=(const PresignaturePool&) = delete;

  /// Next presignature in deal order. Falls back to online dealing when the
  /// pool is empty (see the backpressure policy above). Thread-safe.
  DealtPresignature take();

  /// Tops the pool up to config().depth (no-op when depth is 0 or the pool
  /// is already full). Thread-safe; concurrent refills serialize.
  void refill();

  /// refill(), but only when the stock is at/below the low watermark — the
  /// amortized top-up hook callers run after servicing demand.
  void maybe_refill();

  const PresigPoolConfig& config() const { return config_; }

  /// Currently precomputed presignatures.
  std::size_t size() const;

  // Lifetime statistics (also exported as tecdsa.pool.* metrics).
  std::uint64_t dealt_total() const { return dealt_total_.load(std::memory_order_relaxed); }
  std::uint64_t consumed_total() const { return consumed_total_.load(std::memory_order_relaxed); }
  std::uint64_t refills() const { return refills_.load(std::memory_order_relaxed); }
  std::uint64_t exhaustion_stalls() const {
    return exhaustion_stalls_.load(std::memory_order_relaxed);
  }

  /// Attaches tecdsa.pool.* gauges/counters (nullptr detaches). Attach while
  /// quiescent.
  void set_metrics(obs::MetricsRegistry* registry);
  /// Attaches tecdsa.presig.deal refill spans. The Tracer is single-threaded
  /// by contract: only attach when refill()/take() run on the tracer's
  /// thread.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  /// Deals the next presignature in sequence. Caller holds deal_mu_.
  DealtPresignature deal_one_locked();
  void note_depth(std::size_t depth);

  const ThresholdEcdsaDealer& dealer_;
  PresigPoolConfig config_;

  /// Serializes all dealing (refills and exhaustion fallbacks) so rng_ is
  /// consumed in deal-sequence order. Never acquired while holding mu_.
  std::mutex deal_mu_;
  util::Rng rng_;              // guarded by deal_mu_
  std::uint64_t next_seq_ = 0; // guarded by deal_mu_

  mutable std::mutex mu_;
  std::deque<DealtPresignature> ready_;  // guarded by mu_, FIFO in seq order

  std::atomic<std::uint64_t> dealt_total_{0};
  std::atomic<std::uint64_t> consumed_total_{0};
  std::atomic<std::uint64_t> refills_{0};
  std::atomic<std::uint64_t> exhaustion_stalls_{0};

  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  // Resolved once in set_metrics; the registry guarantees pointer stability.
  obs::Gauge* depth_gauge_ = nullptr;
  obs::Counter* dealt_counter_ = nullptr;
  obs::Counter* consumed_counter_ = nullptr;
  obs::Counter* refills_counter_ = nullptr;
  obs::Counter* stalls_counter_ = nullptr;
};

}  // namespace icbtc::crypto
