#include "crypto/secp256k1.h"

#include <stdexcept>
#include <vector>

namespace icbtc::crypto {

namespace {

const U256 kP = U256::from_hex(
    "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f");
const U256 kN = U256::from_hex(
    "fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141");
const U256 kGx = U256::from_hex(
    "79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798");
const U256 kGy = U256::from_hex(
    "483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8");

}  // namespace

const ModCtx& field_ctx() {
  static const ModCtx ctx(kP);
  return ctx;
}

const ModCtx& scalar_ctx() {
  static const ModCtx ctx(kN);
  return ctx;
}

const U256& curve_order() { return kN; }

const AffinePoint& generator() {
  static const AffinePoint g = AffinePoint::make(kGx, kGy);
  return g;
}

bool AffinePoint::on_curve() const {
  if (infinity) return true;
  const ModCtx& f = field_ctx();
  U256 lhs = f.sqr(y);
  U256 rhs = f.add(f.mul(f.sqr(x), x), U256(7));
  return lhs == rhs;
}

AffinePoint AffinePoint::negated() const {
  if (infinity) return *this;
  return AffinePoint::make(x, field_ctx().neg(y));
}

util::Bytes AffinePoint::compressed() const {
  if (infinity) throw std::domain_error("cannot encode point at infinity");
  util::Bytes out;
  out.reserve(33);
  out.push_back(y.is_odd() ? 0x03 : 0x02);
  auto xb = x.to_be_bytes();
  out.insert(out.end(), xb.data.begin(), xb.data.end());
  return out;
}

util::Bytes AffinePoint::uncompressed() const {
  if (infinity) throw std::domain_error("cannot encode point at infinity");
  util::Bytes out;
  out.reserve(65);
  out.push_back(0x04);
  auto xb = x.to_be_bytes();
  auto yb = y.to_be_bytes();
  out.insert(out.end(), xb.data.begin(), xb.data.end());
  out.insert(out.end(), yb.data.begin(), yb.data.end());
  return out;
}

std::optional<AffinePoint> AffinePoint::parse(util::ByteSpan data) {
  const ModCtx& f = field_ctx();
  if (data.size() == 33 && (data[0] == 0x02 || data[0] == 0x03)) {
    U256 x = U256::from_be_bytes(data.subspan(1, 32));
    if (x >= kP) return std::nullopt;
    // y^2 = x^3 + 7; sqrt via exponentiation with (p+1)/4 (p ≡ 3 mod 4).
    U256 rhs = f.add(f.mul(f.sqr(x), x), U256(7));
    static const U256 kSqrtExp = (kP + U256(1)).shifted_right(2);
    U256 y = f.pow(rhs, kSqrtExp);
    if (f.sqr(y) != rhs) return std::nullopt;  // not a quadratic residue
    bool want_odd = data[0] == 0x03;
    if (y.is_odd() != want_odd) y = f.neg(y);
    return AffinePoint::make(x, y);
  }
  if (data.size() == 65 && data[0] == 0x04) {
    U256 x = U256::from_be_bytes(data.subspan(1, 32));
    U256 y = U256::from_be_bytes(data.subspan(33, 32));
    if (x >= kP || y >= kP) return std::nullopt;
    AffinePoint p = AffinePoint::make(x, y);
    if (!p.on_curve()) return std::nullopt;
    return p;
  }
  return std::nullopt;
}

JacobianPoint JacobianPoint::from_affine(const AffinePoint& p) {
  if (p.infinity) return infinity_point();
  return JacobianPoint{p.x, p.y, U256(1)};
}

JacobianPoint JacobianPoint::doubled() const {
  const ModCtx& f = field_ctx();
  if (is_infinity() || y.is_zero()) return infinity_point();
  // dbl-2009-l formulas (a = 0).
  U256 a = f.sqr(x);
  U256 b = f.sqr(y);
  U256 c = f.sqr(b);
  U256 d = f.mul(U256(2), f.sub(f.sqr(f.add(x, b)), f.add(a, c)));
  U256 e = f.mul(U256(3), a);
  U256 ff = f.sqr(e);
  U256 x3 = f.sub(ff, f.mul(U256(2), d));
  U256 y3 = f.sub(f.mul(e, f.sub(d, x3)), f.mul(U256(8), c));
  U256 z3 = f.mul(U256(2), f.mul(y, z));
  return JacobianPoint{x3, y3, z3};
}

JacobianPoint JacobianPoint::add(const JacobianPoint& other) const {
  const ModCtx& f = field_ctx();
  if (is_infinity()) return other;
  if (other.is_infinity()) return *this;
  // add-2007-bl formulas.
  U256 z1z1 = f.sqr(z);
  U256 z2z2 = f.sqr(other.z);
  U256 u1 = f.mul(x, z2z2);
  U256 u2 = f.mul(other.x, z1z1);
  U256 s1 = f.mul(y, f.mul(other.z, z2z2));
  U256 s2 = f.mul(other.y, f.mul(z, z1z1));
  if (u1 == u2) {
    if (s1 == s2) return doubled();
    return infinity_point();
  }
  U256 h = f.sub(u2, u1);
  U256 i = f.sqr(f.mul(U256(2), h));
  U256 j = f.mul(h, i);
  U256 r = f.mul(U256(2), f.sub(s2, s1));
  U256 v = f.mul(u1, i);
  U256 x3 = f.sub(f.sub(f.sqr(r), j), f.mul(U256(2), v));
  U256 y3 = f.sub(f.mul(r, f.sub(v, x3)), f.mul(U256(2), f.mul(s1, j)));
  U256 z3 = f.mul(f.sub(f.sqr(f.add(z, other.z)), f.add(z1z1, z2z2)), h);
  return JacobianPoint{x3, y3, z3};
}

JacobianPoint JacobianPoint::add_affine(const AffinePoint& other) const {
  if (other.infinity) return *this;
  return add(from_affine(other));
}

AffinePoint JacobianPoint::to_affine() const {
  if (is_infinity()) return AffinePoint{};
  const ModCtx& f = field_ctx();
  U256 zinv = f.inv(z);
  U256 zinv2 = f.sqr(zinv);
  U256 zinv3 = f.mul(zinv2, zinv);
  return AffinePoint::make(f.mul(x, zinv2), f.mul(y, zinv3));
}

AffinePoint scalar_mul(const U256& k, const AffinePoint& p) {
  U256 kr = scalar_ctx().reduce(k);
  JacobianPoint acc = JacobianPoint::infinity_point();
  JacobianPoint base = JacobianPoint::from_affine(p);
  int bits = kr.bit_length();
  for (int i = bits - 1; i >= 0; --i) {
    acc = acc.doubled();
    if (kr.bit(i)) acc = acc.add(base);
  }
  return acc.to_affine();
}

namespace {

// Fixed-window table for G: table[w][v] = (v+1) * 16^w * G for v in [0,15).
const std::vector<std::vector<JacobianPoint>>& generator_table() {
  static const std::vector<std::vector<JacobianPoint>> table = [] {
    std::vector<std::vector<JacobianPoint>> t(64);
    JacobianPoint window_base = JacobianPoint::from_affine(generator());
    for (int w = 0; w < 64; ++w) {
      t[w].reserve(15);
      JacobianPoint cur = window_base;
      for (int v = 0; v < 15; ++v) {
        t[w].push_back(cur);
        cur = cur.add(window_base);
      }
      window_base = cur;  // 16^(w+1) * G
    }
    return t;
  }();
  return table;
}

}  // namespace

AffinePoint generator_mul(const U256& k) {
  U256 kr = scalar_ctx().reduce(k);
  const auto& table = generator_table();
  JacobianPoint acc = JacobianPoint::infinity_point();
  for (int w = 0; w < 64; ++w) {
    unsigned nibble = static_cast<unsigned>((kr.limb[w / 16] >> (4 * (w % 16))) & 0xf);
    if (nibble != 0) acc = acc.add(table[w][nibble - 1]);
  }
  return acc.to_affine();
}

AffinePoint double_mul(const U256& u1, const U256& u2, const AffinePoint& p) {
  // Straightforward: two scalar multiplications plus one addition. Shamir's
  // trick is unnecessary at simulation scale.
  JacobianPoint a = JacobianPoint::from_affine(generator_mul(u1));
  JacobianPoint b = JacobianPoint::from_affine(scalar_mul(u2, p));
  return a.add(b).to_affine();
}

AffinePoint multi_mul(const std::vector<U256>& scalars, const std::vector<AffinePoint>& points) {
  if (scalars.size() != points.size()) {
    throw std::invalid_argument("multi_mul: size mismatch");
  }
  const std::size_t n = scalars.size();
  if (n == 0) return AffinePoint{};
  if (n == 1) return scalar_mul(scalars[0], points[0]);

  const ModCtx& sc = scalar_ctx();
  std::vector<U256> reduced;
  reduced.reserve(n);
  for (const auto& s : scalars) reduced.push_back(sc.reduce(s));

  // Window width: wider windows amortize bucket aggregation (full Jacobian
  // adds, ~16 field muls) over more bucket-fill mixed adds (~11 field muls).
  // Thresholds minimize ceil(256/w)·(11n + 32·(2^w − 1)) at each crossover.
  int w = 4;
  if (n >= 160) w = 5;
  if (n >= 360) w = 6;
  if (n >= 1000) w = 7;
  if (n >= 2000) w = 8;
  if (n >= 9000) w = 10;
  if (n >= 46000) w = 12;
  const int rounds = (256 + w - 1) / w;
  const std::size_t num_buckets = (std::size_t{1} << w) - 1;

  JacobianPoint acc = JacobianPoint::infinity_point();
  std::vector<JacobianPoint> buckets(num_buckets);
  for (int round = rounds - 1; round >= 0; --round) {
    if (!acc.is_infinity()) {
      for (int i = 0; i < w; ++i) acc = acc.doubled();
    }
    for (auto& b : buckets) b = JacobianPoint::infinity_point();
    const int lo = round * w;
    for (std::size_t i = 0; i < n; ++i) {
      unsigned digit = 0;
      for (int bit = w - 1; bit >= 0; --bit) {
        digit <<= 1;
        int idx = lo + bit;
        if (idx < 256 && reduced[i].bit(idx)) digit |= 1;
      }
      if (digit != 0) buckets[digit - 1] = buckets[digit - 1].add_affine(points[i]);
    }
    // Σ v * bucket[v] via the running-sum trick: suffix sums added once each.
    JacobianPoint running = JacobianPoint::infinity_point();
    JacobianPoint sum = JacobianPoint::infinity_point();
    for (std::size_t v = num_buckets; v-- > 0;) {
      running = running.add(buckets[v]);
      sum = sum.add(running);
    }
    acc = acc.add(sum);
  }
  return acc.to_affine();
}

}  // namespace icbtc::crypto
