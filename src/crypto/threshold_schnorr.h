// Threshold Schnorr (BIP-340) signing service — the second protocol the IC
// exposes to canisters (§I). Same trusted-dealer structure as the
// threshold-ECDSA module: Shamir-shared key, per-signature shared nonce,
// locally computed partial signatures, public recombination. Schnorr's
// linearity makes the partials simpler: s_i = k_i + e * x_i.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/schnorr.h"
#include "crypto/shamir.h"
#include "util/rng.h"

namespace icbtc::crypto {

struct SchnorrPartialSignature {
  std::uint32_t index = 0;
  U256 s_share;
};

/// Public part of a Schnorr presignature: R with even Y.
struct SchnorrPresignature {
  U256 r_x;  // R.x — first half of the final signature
};

class ThresholdSchnorrDealer {
 public:
  ThresholdSchnorrDealer(std::uint32_t t, std::uint32_t n, util::Rng& rng);

  std::uint32_t threshold() const { return t_; }
  std::uint32_t num_parties() const { return n_; }
  const XOnlyPublicKey& public_key() const { return pubkey_; }
  const std::vector<Share>& key_shares() const { return key_shares_; }

  /// Deals a fresh nonce: public R.x plus one nonce share per party. The
  /// dealer pre-negates k so R has even Y (BIP-340 form).
  std::pair<SchnorrPresignature, std::vector<Share>> deal_presignature(util::Rng& rng);

 private:
  std::uint32_t t_;
  std::uint32_t n_;
  U256 secret_even_y_;
  XOnlyPublicKey pubkey_;
  std::vector<Share> key_shares_;
};

/// Replica-local partial signature: s_i = k_i + e * x_i with the BIP-340
/// challenge e for (R.x, P.x, message).
SchnorrPartialSignature compute_schnorr_partial(const Share& nonce_share, const Share& key_share,
                                                const SchnorrPresignature& pre,
                                                const XOnlyPublicKey& pubkey,
                                                const util::Hash256& message);

/// Combines >= t partials into a full BIP-340 signature and verifies it.
std::optional<SchnorrSignature> combine_schnorr_partials(
    const std::vector<SchnorrPartialSignature>& partials, const SchnorrPresignature& pre,
    const XOnlyPublicKey& pubkey, const util::Hash256& message);

/// A derivation path, as in the management-canister API.
using SchnorrDerivationPath = std::vector<util::Bytes>;

/// Additive x-only tweak for a path under the master key.
U256 schnorr_derivation_tweak(const XOnlyPublicKey& master, const SchnorrDerivationPath& path);

/// Façade mirroring ThresholdEcdsaService, with BIP-340-style additive key
/// derivation: each path yields an independent x-only key whose secret is
/// ±(d + tweak), the sign chosen so the derived point has even Y. Share
/// arithmetic is linear, so replicas derive their shares locally.
class ThresholdSchnorrService {
 public:
  ThresholdSchnorrService(std::uint32_t t, std::uint32_t n, std::uint64_t seed);

  XOnlyPublicKey public_key(const SchnorrDerivationPath& path = {}) const;

  SchnorrSignature sign(const util::Hash256& message, const SchnorrDerivationPath& path,
                        const std::vector<std::uint32_t>& participants);
  SchnorrSignature sign(const util::Hash256& message, const SchnorrDerivationPath& path = {});

  std::uint32_t threshold() const { return dealer_.threshold(); }
  std::uint32_t num_parties() const { return dealer_.num_parties(); }

 private:
  /// Derived even-Y point and whether the shares must be negated.
  struct Derived {
    XOnlyPublicKey pubkey;
    U256 tweak;
    bool negate = false;
  };
  Derived derive(const SchnorrDerivationPath& path) const;

  util::Rng rng_;
  ThresholdSchnorrDealer dealer_;
};

}  // namespace icbtc::crypto
