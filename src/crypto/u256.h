// Fixed-width 256-bit unsigned arithmetic with modular helpers, written for
// the secp256k1 field/scalar implementation. Not constant-time: this library
// backs a simulation, not a production signer.
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "util/bytes.h"

namespace icbtc::crypto {

struct U256 {
  // Little-endian limbs: limb[0] holds the least significant 64 bits.
  std::array<std::uint64_t, 4> limb{};

  constexpr U256() = default;
  constexpr explicit U256(std::uint64_t v) : limb{v, 0, 0, 0} {}
  constexpr U256(std::uint64_t l0, std::uint64_t l1, std::uint64_t l2, std::uint64_t l3)
      : limb{l0, l1, l2, l3} {}

  static U256 from_be_bytes(util::ByteSpan b);
  static U256 from_hex(std::string_view hex);
  /// 32-byte big-endian encoding.
  util::FixedBytes<32> to_be_bytes() const;
  std::string to_hex() const;

  bool is_zero() const { return (limb[0] | limb[1] | limb[2] | limb[3]) == 0; }
  bool is_odd() const { return (limb[0] & 1) != 0; }
  bool bit(int i) const { return (limb[i / 64] >> (i % 64)) & 1; }
  /// Number of significant bits (0 for zero).
  int bit_length() const;

  auto operator<=>(const U256& o) const {
    for (int i = 3; i >= 0; --i)
      if (limb[i] != o.limb[i]) return limb[i] <=> o.limb[i];
    return std::strong_ordering::equal;
  }
  bool operator==(const U256&) const = default;

  /// a + b, returning the carry-out.
  static std::uint64_t add_with_carry(const U256& a, const U256& b, U256& out);
  /// a - b, returning the borrow-out.
  static std::uint64_t sub_with_borrow(const U256& a, const U256& b, U256& out);

  U256 operator+(const U256& o) const {
    U256 r;
    add_with_carry(*this, o, r);
    return r;
  }
  U256 operator-(const U256& o) const {
    U256 r;
    sub_with_borrow(*this, o, r);
    return r;
  }

  U256 shifted_left(unsigned n) const;
  U256 shifted_right(unsigned n) const;
};

/// 512-bit product container (little-endian limbs).
struct U512 {
  std::array<std::uint64_t, 8> limb{};

  U256 lo() const { return U256(limb[0], limb[1], limb[2], limb[3]); }
  U256 hi() const { return U256(limb[4], limb[5], limb[6], limb[7]); }
  bool hi_is_zero() const { return (limb[4] | limb[5] | limb[6] | limb[7]) == 0; }
};

/// Full 256x256 -> 512 multiplication.
U512 mul_full(const U256& a, const U256& b);

/// Unsigned division a / b (throws std::domain_error on b == 0).
U256 udiv(const U256& a, const U256& b);

/// Modular-arithmetic context for a fixed modulus m > 2^255. Precomputes
/// k = 2^256 mod m so 512-bit values reduce with a few folds instead of long
/// division.
class ModCtx {
 public:
  explicit ModCtx(const U256& modulus);

  const U256& modulus() const { return m_; }

  U256 reduce(const U256& a) const;      // a mod m for a < 2^256
  U256 reduce512(const U512& a) const;   // a mod m for a < 2^512
  U256 add(const U256& a, const U256& b) const;
  U256 sub(const U256& a, const U256& b) const;
  U256 neg(const U256& a) const;
  U256 mul(const U256& a, const U256& b) const;
  U256 sqr(const U256& a) const { return mul(a, a); }
  U256 pow(const U256& base, const U256& exp) const;
  /// Multiplicative inverse via Fermat's little theorem; modulus must be
  /// prime. Throws std::domain_error for a == 0.
  U256 inv(const U256& a) const;

 private:
  U256 m_;
  U256 k_;  // 2^256 mod m
};

}  // namespace icbtc::crypto
