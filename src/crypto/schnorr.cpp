#include "crypto/schnorr.h"

#include <stdexcept>

#include "crypto/sha256.h"

namespace icbtc::crypto {

util::Hash256 tagged_hash(std::string_view tag, util::ByteSpan data) {
  util::Hash256 tag_hash = Sha256::hash(util::ByteSpan(
      reinterpret_cast<const std::uint8_t*>(tag.data()), tag.size()));
  Sha256 h;
  h.update(tag_hash.span());
  h.update(tag_hash.span());
  h.update(data);
  return h.finalize();
}

std::optional<AffinePoint> XOnlyPublicKey::lift() const {
  const ModCtx& f = field_ctx();
  if (x >= f.modulus()) return std::nullopt;
  // y^2 = x^3 + 7; take the even root.
  U256 rhs = f.add(f.mul(f.sqr(x), x), U256(7));
  static const U256 kSqrtExp = (f.modulus() + U256(1)).shifted_right(2);
  U256 y = f.pow(rhs, kSqrtExp);
  if (f.sqr(y) != rhs) return std::nullopt;
  if (y.is_odd()) y = f.neg(y);
  return AffinePoint::make(x, y);
}

std::optional<XOnlyPublicKey> XOnlyPublicKey::parse(util::ByteSpan data) {
  if (data.size() != 32) return std::nullopt;
  XOnlyPublicKey key{U256::from_be_bytes(data)};
  if (!key.lift()) return std::nullopt;
  return key;
}

util::Bytes SchnorrSignature::bytes() const {
  util::Bytes out;
  out.reserve(64);
  auto rb = r.to_be_bytes();
  auto sb = s.to_be_bytes();
  out.insert(out.end(), rb.data.begin(), rb.data.end());
  out.insert(out.end(), sb.data.begin(), sb.data.end());
  return out;
}

std::optional<SchnorrSignature> SchnorrSignature::parse(util::ByteSpan data) {
  if (data.size() != 64) return std::nullopt;
  return SchnorrSignature{U256::from_be_bytes(data.subspan(0, 32)),
                          U256::from_be_bytes(data.subspan(32, 32))};
}

SchnorrKeyPair SchnorrKeyPair::from_secret(const U256& secret) {
  if (secret.is_zero() || secret >= curve_order()) {
    throw std::invalid_argument("SchnorrKeyPair: secret out of range");
  }
  AffinePoint p = generator_mul(secret);
  SchnorrKeyPair pair;
  pair.secret_even_y = p.y.is_odd() ? curve_order() - secret : secret;
  pair.pubkey = XOnlyPublicKey{p.x};
  return pair;
}

SchnorrSignature schnorr_sign(const U256& secret, const util::Hash256& message,
                              const util::FixedBytes<32>& aux_rand) {
  const ModCtx& sc = scalar_ctx();
  SchnorrKeyPair pair = SchnorrKeyPair::from_secret(secret);
  const U256& d = pair.secret_even_y;

  // t = d XOR H_tag("BIP0340/aux", aux).
  util::Hash256 aux_hash = tagged_hash("BIP0340/aux", aux_rand.span());
  auto d_bytes = d.to_be_bytes();
  util::Bytes t(32);
  for (int i = 0; i < 32; ++i) {
    t[static_cast<std::size_t>(i)] =
        d_bytes.data[static_cast<std::size_t>(i)] ^ aux_hash.data[static_cast<std::size_t>(i)];
  }

  // k0 = H_tag("BIP0340/nonce", t || P.x || m) mod n.
  util::Bytes nonce_input = t;
  auto px = pair.pubkey.bytes();
  nonce_input.insert(nonce_input.end(), px.data.begin(), px.data.end());
  nonce_input.insert(nonce_input.end(), message.data.begin(), message.data.end());
  U256 k0 = sc.reduce(U256::from_be_bytes(tagged_hash("BIP0340/nonce", nonce_input).span()));
  if (k0.is_zero()) throw std::runtime_error("schnorr_sign: zero nonce (negligible)");

  AffinePoint r_point = generator_mul(k0);
  U256 k = r_point.y.is_odd() ? curve_order() - k0 : k0;

  // e = H_tag("BIP0340/challenge", R.x || P.x || m) mod n.
  util::Bytes challenge_input;
  auto rx = r_point.x.to_be_bytes();
  challenge_input.insert(challenge_input.end(), rx.data.begin(), rx.data.end());
  challenge_input.insert(challenge_input.end(), px.data.begin(), px.data.end());
  challenge_input.insert(challenge_input.end(), message.data.begin(), message.data.end());
  U256 e =
      sc.reduce(U256::from_be_bytes(tagged_hash("BIP0340/challenge", challenge_input).span()));

  return SchnorrSignature{r_point.x, sc.add(k, sc.mul(e, d))};
}

bool schnorr_verify(const XOnlyPublicKey& pubkey, const util::Hash256& message,
                    const SchnorrSignature& sig) {
  const ModCtx& sc = scalar_ctx();
  const ModCtx& f = field_ctx();
  auto p = pubkey.lift();
  if (!p) return false;
  if (sig.r >= f.modulus() || sig.s >= curve_order()) return false;

  util::Bytes challenge_input;
  auto rb = sig.r.to_be_bytes();
  auto pb = pubkey.bytes();
  challenge_input.insert(challenge_input.end(), rb.data.begin(), rb.data.end());
  challenge_input.insert(challenge_input.end(), pb.data.begin(), pb.data.end());
  challenge_input.insert(challenge_input.end(), message.data.begin(), message.data.end());
  U256 e =
      sc.reduce(U256::from_be_bytes(tagged_hash("BIP0340/challenge", challenge_input).span()));

  // R = s*G - e*P.
  JacobianPoint sg = JacobianPoint::from_affine(generator_mul(sig.s));
  AffinePoint ep = scalar_mul(e, *p);
  AffinePoint neg_ep = ep.infinity ? ep : AffinePoint::make(ep.x, f.neg(ep.y));
  AffinePoint r_point = sg.add_affine(neg_ep).to_affine();
  if (r_point.infinity) return false;
  if (r_point.y.is_odd()) return false;
  return r_point.x == sig.r;
}

}  // namespace icbtc::crypto
