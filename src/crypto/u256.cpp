#include "crypto/u256.h"

namespace icbtc::crypto {

U256 U256::from_be_bytes(util::ByteSpan b) {
  if (b.size() != 32) throw std::invalid_argument("U256::from_be_bytes: need 32 bytes");
  U256 out;
  for (int i = 0; i < 4; ++i) {
    std::uint64_t v = 0;
    for (int j = 0; j < 8; ++j) v = (v << 8) | b[static_cast<std::size_t>((3 - i) * 8 + j)];
    out.limb[i] = v;
  }
  return out;
}

U256 U256::from_hex(std::string_view hex) {
  std::string padded(64 - hex.size(), '0');
  if (hex.size() > 64) throw std::invalid_argument("U256::from_hex: too long");
  padded += hex;
  return from_be_bytes(util::from_hex(padded));
}

util::FixedBytes<32> U256::to_be_bytes() const {
  util::FixedBytes<32> out;
  for (int i = 0; i < 4; ++i) {
    std::uint64_t v = limb[3 - i];
    for (int j = 0; j < 8; ++j) out.data[static_cast<std::size_t>(i * 8 + j)] =
        static_cast<std::uint8_t>(v >> (56 - 8 * j));
  }
  return out;
}

std::string U256::to_hex() const { return util::to_hex(to_be_bytes().span()); }

int U256::bit_length() const {
  for (int i = 3; i >= 0; --i) {
    if (limb[i] != 0) return 64 * i + (64 - __builtin_clzll(limb[i]));
  }
  return 0;
}

std::uint64_t U256::add_with_carry(const U256& a, const U256& b, U256& out) {
  unsigned __int128 carry = 0;
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 s = static_cast<unsigned __int128>(a.limb[i]) + b.limb[i] + carry;
    out.limb[i] = static_cast<std::uint64_t>(s);
    carry = s >> 64;
  }
  return static_cast<std::uint64_t>(carry);
}

std::uint64_t U256::sub_with_borrow(const U256& a, const U256& b, U256& out) {
  std::uint64_t borrow = 0;
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 d = static_cast<unsigned __int128>(a.limb[i]) -
                          static_cast<unsigned __int128>(b.limb[i]) - borrow;
    out.limb[i] = static_cast<std::uint64_t>(d);
    borrow = static_cast<std::uint64_t>((d >> 64) & 1);
  }
  return borrow;
}

U256 U256::shifted_left(unsigned n) const {
  U256 out;
  if (n >= 256) return out;
  unsigned limb_shift = n / 64, bit_shift = n % 64;
  for (int i = 3; i >= 0; --i) {
    std::uint64_t v = 0;
    int src = i - static_cast<int>(limb_shift);
    if (src >= 0) v = limb[src] << bit_shift;
    if (bit_shift != 0 && src - 1 >= 0) v |= limb[src - 1] >> (64 - bit_shift);
    out.limb[i] = v;
  }
  return out;
}

U256 U256::shifted_right(unsigned n) const {
  U256 out;
  if (n >= 256) return out;
  unsigned limb_shift = n / 64, bit_shift = n % 64;
  for (int i = 0; i < 4; ++i) {
    std::uint64_t v = 0;
    std::size_t src = i + limb_shift;
    if (src < 4) v = limb[src] >> bit_shift;
    if (bit_shift != 0 && src + 1 < 4) v |= limb[src + 1] << (64 - bit_shift);
    out.limb[i] = v;
  }
  return out;
}

U512 mul_full(const U256& a, const U256& b) {
  U512 out;
  for (int i = 0; i < 4; ++i) {
    std::uint64_t carry = 0;
    for (int j = 0; j < 4; ++j) {
      unsigned __int128 cur = static_cast<unsigned __int128>(a.limb[i]) * b.limb[j] +
                              out.limb[i + j] + carry;
      out.limb[i + j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    out.limb[i + 4] = carry;
  }
  return out;
}

U256 udiv(const U256& a, const U256& b) {
  if (b.is_zero()) throw std::domain_error("udiv: division by zero");
  if (a < b) return U256(0);
  // Schoolbook binary long division.
  U256 quotient;
  U256 remainder;
  for (int i = a.bit_length() - 1; i >= 0; --i) {
    remainder = remainder.shifted_left(1);
    if (a.bit(i)) remainder.limb[0] |= 1;
    if (remainder >= b) {
      remainder = remainder - b;
      quotient.limb[static_cast<std::size_t>(i / 64)] |= (1ULL << (i % 64));
    }
  }
  return quotient;
}

ModCtx::ModCtx(const U256& modulus) : m_(modulus) {
  if (modulus.bit_length() < 256) {
    throw std::invalid_argument("ModCtx: modulus must use the top bit (>= 2^255)");
  }
  // 2^256 mod m == (0 - m) mod 2^256 when 2^255 <= m < 2^256.
  U256 zero;
  U256::sub_with_borrow(zero, m_, k_);
}

U256 ModCtx::reduce(const U256& a) const {
  U256 out = a;
  while (out >= m_) out = out - m_;
  return out;
}

U256 ModCtx::reduce512(const U512& a) const {
  // Fold: value = hi * 2^256 + lo == hi * k + lo (mod m). Because k < 2^130
  // for secp256k1's p and n, a handful of folds collapses the value below
  // 2^256 + small, after which conditional subtraction finishes the job.
  U256 lo = a.lo();
  U256 hi = a.hi();
  while (!hi.is_zero()) {
    U512 folded = mul_full(hi, k_);
    std::uint64_t carry = U256::add_with_carry(folded.lo(), lo, lo);
    U256 new_hi = folded.hi();
    if (carry) {
      U256 one(1);
      U256::add_with_carry(new_hi, one, new_hi);  // cannot overflow: hi*k >> 2^256
    }
    hi = new_hi;
  }
  return reduce(lo);
}

U256 ModCtx::add(const U256& a, const U256& b) const {
  U256 r;
  std::uint64_t carry = U256::add_with_carry(a, b, r);
  if (carry) {
    // r represents a+b-2^256; add k (= 2^256 mod m) to fold the carry back.
    std::uint64_t c2 = U256::add_with_carry(r, k_, r);
    (void)c2;  // a,b < m < 2^256 so a+b < 2m; one fold suffices
  }
  return reduce(r);
}

U256 ModCtx::sub(const U256& a, const U256& b) const {
  U256 r;
  std::uint64_t borrow = U256::sub_with_borrow(a, b, r);
  if (borrow) U256::add_with_carry(r, m_, r);
  return r;
}

U256 ModCtx::neg(const U256& a) const {
  if (a.is_zero()) return a;
  return m_ - reduce(a);
}

U256 ModCtx::mul(const U256& a, const U256& b) const { return reduce512(mul_full(a, b)); }

U256 ModCtx::pow(const U256& base, const U256& exp) const {
  U256 result(1);
  U256 acc = reduce(base);
  int bits = exp.bit_length();
  for (int i = 0; i < bits; ++i) {
    if (exp.bit(i)) result = mul(result, acc);
    acc = mul(acc, acc);
  }
  return result;
}

U256 ModCtx::inv(const U256& a) const {
  if (reduce(a).is_zero()) throw std::domain_error("ModCtx::inv: zero has no inverse");
  U256 two(2);
  return pow(a, m_ - two);
}

}  // namespace icbtc::crypto
