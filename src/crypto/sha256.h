// SHA-256, double-SHA-256 (Bitcoin's block/tx hash), and HMAC-SHA256.
//
// The compression function is runtime-dispatched: a portable FIPS 180-4
// loop, an SSE4-tuned fully unrolled scalar variant, and a SHA-NI
// (x86 SHA extensions) variant are selected by CPU detection at first use.
// All variants are bit-identical; `set_sha256_impl` lets tests and benches
// pin a specific one. Double-SHA256 avoids intermediate buffer copies, and
// the 64-byte-input path (`sha256d_64`) used for Merkle inner nodes skips
// the streaming state machine entirely.
#pragma once

#include <cstdint>

#include "util/bytes.h"

namespace icbtc::crypto {

using util::ByteSpan;
using util::Bytes;
using util::Hash256;

/// Available compression-function implementations, in increasing preference
/// order. kSse4 and kShaNi are only usable when the CPU supports them.
enum class Sha256Impl : int { kPortable = 0, kSse4 = 1, kShaNi = 2 };

/// The fastest implementation this CPU supports.
Sha256Impl sha256_best_impl();
/// The implementation currently used by every SHA-256 entry point.
Sha256Impl sha256_active_impl();
/// Pins the active implementation; returns false (and leaves the active one
/// unchanged) when the CPU does not support `impl`. Not safe to call
/// concurrently with in-flight hashing.
bool set_sha256_impl(Sha256Impl impl);
const char* to_string(Sha256Impl impl);

/// Incremental SHA-256 (FIPS 180-4).
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  Sha256& update(ByteSpan data);
  /// Finalizes and returns the 32-byte digest. The object must be reset()
  /// before reuse.
  Hash256 finalize();

  static Hash256 hash(ByteSpan data) { return Sha256().update(data).finalize(); }

 private:
  std::uint32_t state_[8];
  std::uint8_t buffer_[64];
  std::uint64_t total_len_ = 0;
  std::size_t buffer_len_ = 0;
};

/// SHA-256 applied twice — Bitcoin's hash function H. The second pass is a
/// single specialized compression of the 32-byte first digest (no stream
/// state, no intermediate copies).
Hash256 sha256d(ByteSpan data);

/// sha256d of exactly 64 bytes of input — the Merkle inner-node shape
/// (left hash || right hash). Two fixed compressions for the first pass and
/// one for the second, with no buffering or length bookkeeping.
Hash256 sha256d_64(const std::uint8_t* data64);

/// HMAC-SHA256 (RFC 2104); used by the RFC 6979 deterministic nonce derivation.
Hash256 hmac_sha256(ByteSpan key, ByteSpan data);

}  // namespace icbtc::crypto
