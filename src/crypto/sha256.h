// SHA-256, double-SHA-256 (Bitcoin's block/tx hash), and HMAC-SHA256.
#pragma once

#include <cstdint>

#include "util/bytes.h"

namespace icbtc::crypto {

using util::ByteSpan;
using util::Bytes;
using util::Hash256;

/// Incremental SHA-256 (FIPS 180-4).
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  Sha256& update(ByteSpan data);
  /// Finalizes and returns the 32-byte digest. The object must be reset()
  /// before reuse.
  Hash256 finalize();

  static Hash256 hash(ByteSpan data) { return Sha256().update(data).finalize(); }

 private:
  void compress(const std::uint8_t* block);

  std::uint32_t state_[8];
  std::uint8_t buffer_[64];
  std::uint64_t total_len_ = 0;
  std::size_t buffer_len_ = 0;
};

/// SHA-256 applied twice — Bitcoin's hash function H.
Hash256 sha256d(ByteSpan data);

/// HMAC-SHA256 (RFC 2104); used by the RFC 6979 deterministic nonce derivation.
Hash256 hmac_sha256(ByteSpan key, ByteSpan data);

}  // namespace icbtc::crypto
