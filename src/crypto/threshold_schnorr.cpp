#include "crypto/threshold_schnorr.h"

#include <stdexcept>
#include <unordered_set>

namespace icbtc::crypto {

namespace {
U256 random_scalar_nonzero(util::Rng& rng) {
  for (;;) {
    auto bytes = rng.next_bytes(32);
    U256 v = U256::from_be_bytes(util::ByteSpan(bytes.data(), bytes.size()));
    if (!v.is_zero() && v < curve_order()) return v;
  }
}

U256 bip340_challenge(const U256& r_x, const XOnlyPublicKey& pubkey,
                      const util::Hash256& message) {
  util::Bytes input;
  auto rb = r_x.to_be_bytes();
  auto pb = pubkey.bytes();
  input.insert(input.end(), rb.data.begin(), rb.data.end());
  input.insert(input.end(), pb.data.begin(), pb.data.end());
  input.insert(input.end(), message.data.begin(), message.data.end());
  return scalar_ctx().reduce(
      U256::from_be_bytes(tagged_hash("BIP0340/challenge", input).span()));
}
}  // namespace

ThresholdSchnorrDealer::ThresholdSchnorrDealer(std::uint32_t t, std::uint32_t n, util::Rng& rng)
    : t_(t), n_(n) {
  if (t == 0 || t > n) throw std::invalid_argument("ThresholdSchnorrDealer: need 1 <= t <= n");
  U256 secret = random_scalar_nonzero(rng);
  SchnorrKeyPair pair = SchnorrKeyPair::from_secret(secret);
  secret_even_y_ = pair.secret_even_y;
  pubkey_ = pair.pubkey;
  key_shares_ = shamir_split(secret_even_y_, t, n, rng);
}

std::pair<SchnorrPresignature, std::vector<Share>> ThresholdSchnorrDealer::deal_presignature(
    util::Rng& rng) {
  for (;;) {
    U256 k = random_scalar_nonzero(rng);
    AffinePoint r_point = generator_mul(k);
    if (r_point.y.is_odd()) k = curve_order() - k;  // BIP-340: even-Y nonce
    r_point = generator_mul(k);
    if (r_point.x.is_zero()) continue;
    auto shares = shamir_split(k, t_, n_, rng);
    return {SchnorrPresignature{r_point.x}, std::move(shares)};
  }
}

SchnorrPartialSignature compute_schnorr_partial(const Share& nonce_share, const Share& key_share,
                                                const SchnorrPresignature& pre,
                                                const XOnlyPublicKey& pubkey,
                                                const util::Hash256& message) {
  if (nonce_share.index != key_share.index) {
    throw std::invalid_argument("compute_schnorr_partial: share index mismatch");
  }
  const ModCtx& sc = scalar_ctx();
  U256 e = bip340_challenge(pre.r_x, pubkey, message);
  return SchnorrPartialSignature{
      nonce_share.index, sc.add(nonce_share.value, sc.mul(e, key_share.value))};
}

std::optional<SchnorrSignature> combine_schnorr_partials(
    const std::vector<SchnorrPartialSignature>& partials, const SchnorrPresignature& pre,
    const XOnlyPublicKey& pubkey, const util::Hash256& message) {
  if (partials.empty()) return std::nullopt;
  std::vector<std::uint32_t> indices;
  std::unordered_set<std::uint32_t> seen;
  for (const auto& p : partials) {
    if (p.index == 0 || !seen.insert(p.index).second) return std::nullopt;
    indices.push_back(p.index);
  }
  const ModCtx& sc = scalar_ctx();
  U256 s(0);
  for (const auto& p : partials) {
    s = sc.add(s, sc.mul(lagrange_coefficient_at_zero(p.index, indices), p.s_share));
  }
  SchnorrSignature sig{pre.r_x, s};
  if (!schnorr_verify(pubkey, message, sig)) return std::nullopt;
  return sig;
}

U256 schnorr_derivation_tweak(const XOnlyPublicKey& master, const SchnorrDerivationPath& path) {
  if (path.empty()) return U256(0);
  util::Bytes input;
  auto pb = master.bytes();
  input.insert(input.end(), pb.data.begin(), pb.data.end());
  for (const auto& component : path) {
    // Length-prefixed so component boundaries are unambiguous.
    std::uint32_t len = static_cast<std::uint32_t>(component.size());
    for (int i = 0; i < 4; ++i) input.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
    input.insert(input.end(), component.begin(), component.end());
  }
  return scalar_ctx().reduce(
      U256::from_be_bytes(tagged_hash("icbtc/schnorr-derive", input).span()));
}

ThresholdSchnorrService::ThresholdSchnorrService(std::uint32_t t, std::uint32_t n,
                                                 std::uint64_t seed)
    : rng_(seed), dealer_(t, n, rng_) {}

ThresholdSchnorrService::Derived ThresholdSchnorrService::derive(
    const SchnorrDerivationPath& path) const {
  Derived out;
  out.tweak = schnorr_derivation_tweak(dealer_.public_key(), path);
  if (out.tweak.is_zero()) {
    out.pubkey = dealer_.public_key();
    return out;
  }
  auto base = dealer_.public_key().lift();
  AffinePoint derived =
      JacobianPoint::from_affine(*base).add_affine(generator_mul(out.tweak)).to_affine();
  if (derived.infinity) throw std::runtime_error("schnorr derive: degenerate tweak");
  out.pubkey = XOnlyPublicKey{derived.x};
  out.negate = derived.y.is_odd();
  return out;
}

XOnlyPublicKey ThresholdSchnorrService::public_key(const SchnorrDerivationPath& path) const {
  return derive(path).pubkey;
}

SchnorrSignature ThresholdSchnorrService::sign(const util::Hash256& message,
                                               const SchnorrDerivationPath& path,
                                               const std::vector<std::uint32_t>& participants) {
  if (participants.size() < dealer_.threshold()) {
    throw std::invalid_argument("threshold schnorr sign: not enough participants");
  }
  std::unordered_set<std::uint32_t> seen;
  for (auto i : participants) {
    if (i == 0 || i > dealer_.num_parties() || !seen.insert(i).second) {
      throw std::invalid_argument("threshold schnorr sign: bad participant index");
    }
  }
  Derived derived = derive(path);
  const ModCtx& sc = scalar_ctx();
  auto [pre, nonce_shares] = dealer_.deal_presignature(rng_);
  std::vector<SchnorrPartialSignature> partials;
  for (auto i : participants) {
    // Locally derived key share: ±(x_i + tweak), a valid sharing of the
    // derived even-Y secret. The nonce share keeps its dealer-chosen parity.
    Share key_share = dealer_.key_shares()[i - 1];
    key_share.value = sc.add(key_share.value, derived.tweak);
    if (derived.negate) key_share.value = sc.neg(key_share.value);
    partials.push_back(
        compute_schnorr_partial(nonce_shares[i - 1], key_share, pre, derived.pubkey, message));
    if (partials.size() == dealer_.threshold()) break;
  }
  auto sig = combine_schnorr_partials(partials, pre, derived.pubkey, message);
  if (!sig) throw std::runtime_error("threshold schnorr sign: combination failed");
  return *sig;
}

SchnorrSignature ThresholdSchnorrService::sign(const util::Hash256& message,
                                               const SchnorrDerivationPath& path) {
  std::vector<std::uint32_t> participants;
  for (std::uint32_t i = 1; i <= dealer_.threshold(); ++i) participants.push_back(i);
  return sign(message, path, participants);
}

}  // namespace icbtc::crypto
