// RIPEMD-160, used for Bitcoin address derivation (hash160 = RIPEMD160(SHA256(x))).
#pragma once

#include "util/bytes.h"

namespace icbtc::crypto {

util::Hash160 ripemd160(util::ByteSpan data);

/// RIPEMD160(SHA256(data)) — the standard Bitcoin address hash.
util::Hash160 hash160(util::ByteSpan data);

}  // namespace icbtc::crypto
