// Threshold-ECDSA signing service.
//
// The IC runs the Groth–Shoup distributed ECDSA protocol [3]: key shares are
// dealt by a DKG, presignature "quadruples" are produced by an asynchronous
// MPC, and any 2f+1 of 3f+1 replicas can produce a signature. Reproducing the
// MPC is out of scope (the paper treats it as a black box); what matters to
// the architecture is the *interface* — per-replica key shares, per-signature
// presignatures, locally computed partial signatures, and public
// recombination that tolerates missing or corrupt partials.
//
// This module reproduces exactly that structure with a trusted dealer
// standing in for the DKG/MPC:
//   - the master key x is Shamir-shared (degree t-1) into x_i,
//   - a presignature deals shares w_i of k^-1 and mu_i of k^-1 * x for a
//     fresh nonce k with R = k*G public,
//   - replica i computes the partial signature s_i = z*w_i + r*mu_i
//     (plus tweak*w_i for derived keys),
//   - any t partials interpolate to s = k^-1 (z + r*x), a standard ECDSA
//     signature verifiable under the (derived) public key.
//
// Production IC tECDSA hides the expensive quadruple generation behind an
// offline pool consumed per request; ThresholdEcdsaService mirrors that: all
// presignature material flows through a PresignaturePool (depth 0 degrades
// to per-request online dealing), consumption order is the deal order, and
// sign_batch() signs many requests in one pass — shared Lagrange
// coefficients, pooled partial computation, and one batched verification.
//
// Derived keys use additive tweaks (BIP32-style, non-hardened): each canister
// obtains its own Bitcoin key under the subnet master key.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "crypto/ecdsa.h"
#include "crypto/shamir.h"
#include "util/rng.h"

namespace icbtc::obs {
class MetricsRegistry;
class Tracer;
}  // namespace icbtc::obs

namespace icbtc::crypto {

class PresignaturePool;
struct PresigPoolConfig;

/// A derivation path, as in the IC's `ecdsa_public_key`/`sign_with_ecdsa`
/// management-canister API: arbitrary byte-string components.
using DerivationPath = std::vector<util::Bytes>;

/// Additive scalar tweak for a derivation path under a master public key.
U256 derivation_tweak(const AffinePoint& master_pubkey, const DerivationPath& path);

/// Per-replica long-term key share.
struct KeyShare {
  std::uint32_t index = 0;
  U256 x_share;
};

/// Per-signature presignature material for one replica.
struct PresignatureShare {
  std::uint32_t index = 0;
  U256 w_share;   // share of k^-1
  U256 mu_share;  // share of k^-1 * x (master x)
};

/// Public part of a presignature.
struct Presignature {
  AffinePoint big_r;  // R = k*G
  U256 r;             // R.x mod n
};

/// A replica's contribution to one signature.
struct PartialSignature {
  std::uint32_t index = 0;
  U256 s_share;
};

/// Randomness for one presignature deal, drawn up front: the nonce k plus
/// the random (degree >= 1) coefficients of the two sharing polynomials.
/// Dealing from it is a pure function, so a refill can draw serially (fixing
/// the RNG stream and hence the deal sequence) and compute in parallel.
struct PresigRandomness {
  U256 k;
  std::vector<U256> w_coeffs;   // t-1 coefficients for the k^-1 sharing
  std::vector<U256> mu_coeffs;  // t-1 coefficients for the k^-1 * x sharing
};

/// A dealt presignature ready for consumption: public part plus every
/// party's shares, tagged with its position in the deal sequence. Single-use
/// by construction — ThresholdEcdsaService::sign_prepared marks it consumed
/// and rejects reuse (nonce reuse leaks the master key).
struct DealtPresignature {
  std::uint64_t seq = 0;
  Presignature pub;
  std::vector<PresignatureShare> shares;
  bool consumed = false;
};

/// Trusted dealer simulating DKG + quadruple generation.
class ThresholdEcdsaDealer {
 public:
  /// Deals a t-of-n sharing of a fresh master key.
  ThresholdEcdsaDealer(std::uint32_t t, std::uint32_t n, util::Rng& rng);

  std::uint32_t threshold() const { return t_; }
  std::uint32_t num_parties() const { return n_; }
  const AffinePoint& master_public_key() const { return master_pub_; }
  const std::vector<KeyShare>& key_shares() const { return key_shares_; }

  /// Produces a fresh presignature: public (R, r) plus one share per party.
  std::pair<Presignature, std::vector<PresignatureShare>> deal_presignature(util::Rng& rng) const;

  /// Phase 1 of dealing: draws the nonce and polynomial coefficients. The
  /// only part that touches the RNG.
  PresigRandomness draw_presig_randomness(util::Rng& rng) const;

  /// Phase 2: the expensive, deterministic computation (nonce point, modular
  /// inversion, share evaluation). Pure function of `randomness`, safe to run
  /// on any thread.
  std::pair<Presignature, std::vector<PresignatureShare>> deal_presignature_from(
      const PresigRandomness& randomness) const;

 private:
  std::uint32_t t_;
  std::uint32_t n_;
  U256 master_secret_;
  AffinePoint master_pub_;
  std::vector<KeyShare> key_shares_;
};

/// Public key for a derivation path under a master key.
AffinePoint derive_public_key(const AffinePoint& master_pubkey, const DerivationPath& path);

/// Replica-local partial-signature computation. `tweak` is the derivation
/// tweak of the signing path (0 for the master key).
PartialSignature compute_partial_signature(const PresignatureShare& pre, const Presignature& pub,
                                           const U256& tweak, const util::Hash256& digest);

/// Why a recombination failed. Structural defects (bad ids, too few shares)
/// are distinguished from cryptographic failure so callers can tell a
/// protocol violation from a Byzantine contribution without waiting for an
/// expensive verification to fail.
enum class CombineError {
  kOk = 0,
  kNoPartials,         // empty input
  kBadPartyId,         // a party index of 0 (not a valid share x-coordinate)
  kDuplicateParty,     // the same party contributed twice
  kBelowThreshold,     // fewer than `threshold` distinct partials
  kInvalidSignature,   // interpolation produced s = 0 or verification failed
};

const char* to_string(CombineError e);

/// Result of combine_partial_signatures_checked. `s_negated` reports whether
/// low-s normalization flipped s — the nonce point satisfying the final
/// signature is then -R, which batched verification needs to know.
struct CombineOutcome {
  std::optional<Signature> signature;
  CombineError error = CombineError::kOk;
  bool s_negated = false;

  bool ok() const { return error == CombineError::kOk; }
};

/// Combines partial signatures into a full signature. Rejects malformed
/// input (zero/duplicate party ids, fewer than `threshold` partials) with a
/// distinct error before doing any expensive math. With `precomputed_lambda`
/// the caller supplies the Lagrange coefficients for the partials' index set
/// (in partials order) — shared across a batch signed by one participant
/// set. With verify_result = false the (costly) ECDSA verification is
/// skipped; callers must then verify by other means (e.g. batch_verify).
CombineOutcome combine_partial_signatures_checked(
    const std::vector<PartialSignature>& partials, const Presignature& pub,
    const AffinePoint& derived_pubkey, const util::Hash256& digest, std::uint32_t threshold,
    const std::vector<U256>* precomputed_lambda = nullptr, bool verify_result = true);

/// Legacy interface: combines >= 1 partial signatures and verifies against
/// the derived public key; nullopt on any failure.
std::optional<Signature> combine_partial_signatures(const std::vector<PartialSignature>& partials,
                                                    const Presignature& pub,
                                                    const AffinePoint& derived_pubkey,
                                                    const util::Hash256& digest);

/// Service configuration. The defaults reproduce the IC's shape: a modest
/// offline pool refilled at a low watermark, derived keys cached.
struct ThresholdEcdsaServiceConfig {
  /// Presignature pool depth (0 = deal online inside every sign call, the
  /// pre-pool behaviour) and refill trigger; see PresigPoolConfig.
  std::size_t pool_depth = 0;
  std::size_t pool_low_watermark = 0;
  /// Compute refill batches on the process-wide parallel::ThreadPool when
  /// one is installed.
  bool parallel_refill = true;
  /// Cache (tweak, derived pubkey) per derivation path. Contracts sign many
  /// times under one path; the derivation costs a point multiplication.
  bool cache_derived_keys = true;
};

/// Convenience façade: holds the dealer and replicas, exposes the
/// management-canister-style API. All presignatures flow through an internal
/// PresignaturePool in deal order, so for a fixed seed the k-th signing
/// request consumes the k-th dealt presignature no matter when refills run —
/// signatures are reproducible across pool depths and refill timing.
///
/// Thread safety: sign()/sign_batch()/public_key() may be called
/// concurrently (the pool, derived-key cache, and counters are internally
/// synchronized); attach metrics/tracers only while quiescent, and tracers
/// only when all signing happens on one thread (the Tracer is
/// single-threaded by contract).
class ThresholdEcdsaService {
 public:
  ThresholdEcdsaService(std::uint32_t t, std::uint32_t n, std::uint64_t seed,
                        ThresholdEcdsaServiceConfig config = {});
  ~ThresholdEcdsaService();

  ThresholdEcdsaService(const ThresholdEcdsaService&) = delete;
  ThresholdEcdsaService& operator=(const ThresholdEcdsaService&) = delete;

  AffinePoint public_key(const DerivationPath& path) const;

  /// Signs with the replicas listed in `participants` (must be >= t distinct
  /// indices). Throws std::invalid_argument on malformed participant sets.
  Signature sign(const util::Hash256& digest, const DerivationPath& path,
                 const std::vector<std::uint32_t>& participants);

  /// Signs with the first t replicas.
  Signature sign(const util::Hash256& digest, const DerivationPath& path);

  /// One pending sign_with_ecdsa call.
  struct SignRequest {
    util::Hash256 digest;
    DerivationPath path;
  };

  /// Signs every request in one pass: presignatures are consumed in request
  /// order, Lagrange coefficients are computed once for the participant set,
  /// partial signatures for the whole batch are computed in parallel when a
  /// shared thread pool is installed, and the results are verified together
  /// with one batched verification (falling back to per-signature checks to
  /// identify corrupt results if the batch check fails). Element i of the
  /// result is byte-identical to what sign() would have produced for request
  /// i at the same point in the consumption sequence.
  std::vector<Signature> sign_batch(const std::vector<SignRequest>& requests,
                                    const std::vector<std::uint32_t>& participants);
  std::vector<Signature> sign_batch(const std::vector<SignRequest>& requests);

  /// Signs with an explicitly provided presignature (consumed by this call).
  /// Throws std::logic_error if `presig` was already consumed — the k-reuse
  /// guard.
  Signature sign_prepared(const util::Hash256& digest, const DerivationPath& path,
                          DealtPresignature& presig,
                          const std::vector<std::uint32_t>& participants);

  std::uint32_t threshold() const;
  std::uint32_t num_parties() const;
  const ThresholdEcdsaDealer& dealer() const { return dealer_; }

  /// The offline presignature pool feeding sign()/sign_batch().
  PresignaturePool& pool() { return *pool_; }
  const PresignaturePool& pool() const { return *pool_; }

  /// Number of presignatures consumed so far (each signature uses exactly
  /// one, matching the IC's quadruple consumption).
  std::uint64_t presignatures_used() const;

  /// Attaches tecdsa.* metrics / trace spans (nullptr detaches).
  void set_metrics(obs::MetricsRegistry* registry);
  void set_tracer(obs::Tracer* tracer);

 private:
  struct DerivedKey {
    U256 tweak;
    AffinePoint pubkey;
  };

  /// Validates and truncates to the first `threshold` participant indices.
  std::vector<std::uint32_t> signing_set(const std::vector<std::uint32_t>& participants) const;
  std::vector<std::uint32_t> default_participants() const;
  DerivedKey derived_for(const DerivationPath& path) const;
  Signature sign_with(DealtPresignature& presig, const util::Hash256& digest,
                      const DerivationPath& path, const std::vector<std::uint32_t>& signing);

  util::Rng rng_;
  ThresholdEcdsaDealer dealer_;
  ThresholdEcdsaServiceConfig config_;
  std::unique_ptr<PresignaturePool> pool_;

  mutable std::mutex derived_mu_;
  mutable std::map<util::Bytes, DerivedKey> derived_cache_;

  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace icbtc::crypto
