// Threshold-ECDSA signing service.
//
// The IC runs the Groth–Shoup distributed ECDSA protocol [3]: key shares are
// dealt by a DKG, presignature "quadruples" are produced by an asynchronous
// MPC, and any 2f+1 of 3f+1 replicas can produce a signature. Reproducing the
// MPC is out of scope (the paper treats it as a black box); what matters to
// the architecture is the *interface* — per-replica key shares, per-signature
// presignatures, locally computed partial signatures, and public
// recombination that tolerates missing or corrupt partials.
//
// This module reproduces exactly that structure with a trusted dealer
// standing in for the DKG/MPC:
//   - the master key x is Shamir-shared (degree t-1) into x_i,
//   - a presignature deals shares w_i of k^-1 and mu_i of k^-1 * x for a
//     fresh nonce k with R = k*G public,
//   - replica i computes the partial signature s_i = z*w_i + r*mu_i
//     (plus tweak*w_i for derived keys),
//   - any t partials interpolate to s = k^-1 (z + r*x), a standard ECDSA
//     signature verifiable under the (derived) public key.
//
// Derived keys use additive tweaks (BIP32-style, non-hardened): each canister
// obtains its own Bitcoin key under the subnet master key.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "crypto/ecdsa.h"
#include "crypto/shamir.h"
#include "util/rng.h"

namespace icbtc::crypto {

/// A derivation path, as in the IC's `ecdsa_public_key`/`sign_with_ecdsa`
/// management-canister API: arbitrary byte-string components.
using DerivationPath = std::vector<util::Bytes>;

/// Additive scalar tweak for a derivation path under a master public key.
U256 derivation_tweak(const AffinePoint& master_pubkey, const DerivationPath& path);

/// Per-replica long-term key share.
struct KeyShare {
  std::uint32_t index = 0;
  U256 x_share;
};

/// Per-signature presignature material for one replica.
struct PresignatureShare {
  std::uint32_t index = 0;
  U256 w_share;   // share of k^-1
  U256 mu_share;  // share of k^-1 * x (master x)
};

/// Public part of a presignature.
struct Presignature {
  AffinePoint big_r;  // R = k*G
  U256 r;             // R.x mod n
};

/// A replica's contribution to one signature.
struct PartialSignature {
  std::uint32_t index = 0;
  U256 s_share;
};

/// Trusted dealer simulating DKG + quadruple generation.
class ThresholdEcdsaDealer {
 public:
  /// Deals a t-of-n sharing of a fresh master key.
  ThresholdEcdsaDealer(std::uint32_t t, std::uint32_t n, util::Rng& rng);

  std::uint32_t threshold() const { return t_; }
  std::uint32_t num_parties() const { return n_; }
  const AffinePoint& master_public_key() const { return master_pub_; }
  const std::vector<KeyShare>& key_shares() const { return key_shares_; }

  /// Produces a fresh presignature: public (R, r) plus one share per party.
  std::pair<Presignature, std::vector<PresignatureShare>> deal_presignature(util::Rng& rng);

 private:
  std::uint32_t t_;
  std::uint32_t n_;
  U256 master_secret_;
  AffinePoint master_pub_;
  std::vector<KeyShare> key_shares_;
};

/// Public key for a derivation path under a master key.
AffinePoint derive_public_key(const AffinePoint& master_pubkey, const DerivationPath& path);

/// Replica-local partial-signature computation. `tweak` is the derivation
/// tweak of the signing path (0 for the master key).
PartialSignature compute_partial_signature(const PresignatureShare& pre, const Presignature& pub,
                                           const U256& tweak, const util::Hash256& digest);

/// Combines >= t partial signatures into a full signature and verifies it
/// against the derived public key; returns nullopt if the partials do not
/// produce a valid signature (e.g. a Byzantine replica contributed garbage).
std::optional<Signature> combine_partial_signatures(const std::vector<PartialSignature>& partials,
                                                    const Presignature& pub,
                                                    const AffinePoint& derived_pubkey,
                                                    const util::Hash256& digest);

/// Convenience façade: holds the dealer and replicas, exposes the
/// management-canister-style API. Combines the first `t` honest partials and
/// retries over subsets when corrupt partials are injected.
class ThresholdEcdsaService {
 public:
  ThresholdEcdsaService(std::uint32_t t, std::uint32_t n, std::uint64_t seed);

  AffinePoint public_key(const DerivationPath& path) const;

  /// Signs with the replicas listed in `participants` (must be >= t distinct
  /// indices). Throws std::invalid_argument on malformed participant sets.
  Signature sign(const util::Hash256& digest, const DerivationPath& path,
                 const std::vector<std::uint32_t>& participants);

  /// Signs with the first t replicas.
  Signature sign(const util::Hash256& digest, const DerivationPath& path);

  std::uint32_t threshold() const { return dealer_.threshold(); }
  std::uint32_t num_parties() const { return dealer_.num_parties(); }

  /// Number of presignatures consumed so far (each sign() uses one, matching
  /// the IC's quadruple consumption).
  std::uint64_t presignatures_used() const { return presignatures_used_; }

 private:
  util::Rng rng_;
  ThresholdEcdsaDealer dealer_;
  std::uint64_t presignatures_used_ = 0;
};

}  // namespace icbtc::crypto
