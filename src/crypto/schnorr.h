// BIP-340 Schnorr signatures over secp256k1. The paper (§I) notes the IC
// exposes threshold Schnorr alongside threshold ECDSA so canisters can use
// taproot outputs; this module provides the signature scheme itself, and
// threshold_schnorr.h the t-of-n service.
#pragma once

#include <optional>

#include "crypto/secp256k1.h"
#include "util/bytes.h"

namespace icbtc::crypto {

/// BIP-340 tagged hash: SHA256(SHA256(tag) || SHA256(tag) || data).
util::Hash256 tagged_hash(std::string_view tag, util::ByteSpan data);

/// An x-only public key (32 bytes, implicitly even Y).
struct XOnlyPublicKey {
  U256 x;

  util::FixedBytes<32> bytes() const { return x.to_be_bytes(); }
  static std::optional<XOnlyPublicKey> parse(util::ByteSpan data);

  /// The full curve point (even Y), or nullopt if x is not on the curve.
  std::optional<AffinePoint> lift() const;

  bool operator==(const XOnlyPublicKey&) const = default;
};

/// 64-byte signature: R.x || s.
struct SchnorrSignature {
  U256 r;
  U256 s;

  util::Bytes bytes() const;
  static std::optional<SchnorrSignature> parse(util::ByteSpan data);

  bool operator==(const SchnorrSignature&) const = default;
};

/// Derives the x-only public key for a secret, and the possibly-negated
/// secret d' such that d'*G has even Y (BIP-340 key preparation).
struct SchnorrKeyPair {
  U256 secret_even_y;  // d' with even-Y public point
  XOnlyPublicKey pubkey;

  /// Throws std::invalid_argument unless 0 < secret < n.
  static SchnorrKeyPair from_secret(const U256& secret);
};

/// BIP-340 signing with auxiliary randomness (pass zeros for deterministic
/// test-vector signing).
SchnorrSignature schnorr_sign(const U256& secret, const util::Hash256& message,
                              const util::FixedBytes<32>& aux_rand = {});

/// BIP-340 verification.
bool schnorr_verify(const XOnlyPublicKey& pubkey, const util::Hash256& message,
                    const SchnorrSignature& sig);

}  // namespace icbtc::crypto
