#include "crypto/threshold_ecdsa.h"

#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "crypto/presig_pool.h"
#include "crypto/sha256.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "util/byteio.h"

namespace icbtc::crypto {

namespace {
U256 random_scalar_nonzero(util::Rng& rng) {
  for (;;) {
    auto bytes = rng.next_bytes(32);
    U256 v = U256::from_be_bytes(util::ByteSpan(bytes.data(), bytes.size()));
    if (!v.is_zero() && v < curve_order()) return v;
  }
}

U256 random_scalar(util::Rng& rng) {
  for (;;) {
    auto bytes = rng.next_bytes(32);
    U256 v = U256::from_be_bytes(util::ByteSpan(bytes.data(), bytes.size()));
    if (v < curve_order()) return v;
  }
}

AffinePoint apply_tweak(const AffinePoint& master_pubkey, const U256& tweak) {
  if (tweak.is_zero()) return master_pubkey;
  JacobianPoint p = JacobianPoint::from_affine(master_pubkey);
  return p.add_affine(generator_mul(tweak)).to_affine();
}

util::Bytes path_cache_key(const DerivationPath& path) {
  util::Bytes key;
  for (const auto& component : path) {
    auto len = static_cast<std::uint32_t>(component.size());
    for (int b = 0; b < 4; ++b) key.push_back(static_cast<std::uint8_t>(len >> (8 * b)));
    key.insert(key.end(), component.begin(), component.end());
  }
  return key;
}
}  // namespace

U256 derivation_tweak(const AffinePoint& master_pubkey, const DerivationPath& path) {
  if (path.empty()) return U256(0);
  // tweak = H("icbtc-derive" || compressed(master) || len-prefixed components)
  // reduced mod n. Collision-resistant domain separation suffices here.
  Sha256 h;
  const char tag[] = "icbtc-derive";
  h.update(util::ByteSpan(reinterpret_cast<const std::uint8_t*>(tag), sizeof(tag) - 1));
  auto mp = master_pubkey.compressed();
  h.update(util::ByteSpan(mp.data(), mp.size()));
  for (const auto& component : path) {
    util::ByteWriter w;
    w.u32le(static_cast<std::uint32_t>(component.size()));
    h.update(util::ByteSpan(w.data().data(), w.data().size()));
    h.update(util::ByteSpan(component.data(), component.size()));
  }
  return scalar_ctx().reduce(U256::from_be_bytes(h.finalize().span()));
}

AffinePoint derive_public_key(const AffinePoint& master_pubkey, const DerivationPath& path) {
  return apply_tweak(master_pubkey, derivation_tweak(master_pubkey, path));
}

ThresholdEcdsaDealer::ThresholdEcdsaDealer(std::uint32_t t, std::uint32_t n, util::Rng& rng)
    : t_(t), n_(n) {
  if (t == 0 || t > n) throw std::invalid_argument("ThresholdEcdsaDealer: need 1 <= t <= n");
  master_secret_ = random_scalar_nonzero(rng);
  master_pub_ = generator_mul(master_secret_);
  auto shares = shamir_split(master_secret_, t, n, rng);
  key_shares_.reserve(n);
  for (const auto& s : shares) key_shares_.push_back(KeyShare{s.index, s.value});
}

PresigRandomness ThresholdEcdsaDealer::draw_presig_randomness(util::Rng& rng) const {
  PresigRandomness out;
  out.k = random_scalar_nonzero(rng);
  out.w_coeffs.reserve(t_ - 1);
  out.mu_coeffs.reserve(t_ - 1);
  for (std::uint32_t i = 1; i < t_; ++i) out.w_coeffs.push_back(random_scalar(rng));
  for (std::uint32_t i = 1; i < t_; ++i) out.mu_coeffs.push_back(random_scalar(rng));
  return out;
}

std::pair<Presignature, std::vector<PresignatureShare>> ThresholdEcdsaDealer::deal_presignature_from(
    const PresigRandomness& randomness) const {
  const ModCtx& sc = scalar_ctx();
  U256 k = randomness.k;
  AffinePoint big_r;
  U256 r;
  for (;;) {
    big_r = generator_mul(k);
    r = sc.reduce(big_r.x);
    if (!r.is_zero()) break;
    // r = 0 has probability ~2^-224; re-derive k deterministically (no RNG —
    // this function must stay a pure function of `randomness`).
    Sha256 h;
    h.update(k.to_be_bytes().span());
    k = sc.reduce(U256::from_be_bytes(h.finalize().span()));
    if (k.is_zero()) k = U256(1);
  }
  U256 kinv = sc.inv(k);
  U256 mu = sc.mul(kinv, master_secret_);  // k^-1 * x

  std::vector<U256> w_coeffs;
  w_coeffs.reserve(t_);
  w_coeffs.push_back(kinv);
  for (const auto& c : randomness.w_coeffs) w_coeffs.push_back(c);
  std::vector<U256> mu_coeffs;
  mu_coeffs.reserve(t_);
  mu_coeffs.push_back(mu);
  for (const auto& c : randomness.mu_coeffs) mu_coeffs.push_back(c);

  auto w_shares = shamir_split_with_coeffs(w_coeffs, n_);
  auto mu_shares = shamir_split_with_coeffs(mu_coeffs, n_);
  std::vector<PresignatureShare> shares;
  shares.reserve(n_);
  for (std::uint32_t i = 0; i < n_; ++i) {
    shares.push_back(PresignatureShare{w_shares[i].index, w_shares[i].value, mu_shares[i].value});
  }
  return {Presignature{big_r, r}, std::move(shares)};
}

std::pair<Presignature, std::vector<PresignatureShare>> ThresholdEcdsaDealer::deal_presignature(
    util::Rng& rng) const {
  return deal_presignature_from(draw_presig_randomness(rng));
}

namespace {

// Partial with the digest already reduced to a scalar; batch signing hoists
// the reduction out of the per-participant loop.
PartialSignature compute_partial_with_z(const PresignatureShare& pre, const Presignature& pub,
                                        const U256& tweak, const U256& z) {
  const ModCtx& sc = scalar_ctx();
  // s_i = z*w_i + r*(mu_i + tweak*w_i): shares of k^-1(z + r(x + tweak)).
  U256 mu_derived = sc.add(pre.mu_share, sc.mul(tweak, pre.w_share));
  U256 s_share = sc.add(sc.mul(z, pre.w_share), sc.mul(pub.r, mu_derived));
  return PartialSignature{pre.index, s_share};
}

}  // namespace

PartialSignature compute_partial_signature(const PresignatureShare& pre, const Presignature& pub,
                                           const U256& tweak, const util::Hash256& digest) {
  const ModCtx& sc = scalar_ctx();
  return compute_partial_with_z(pre, pub, tweak, sc.reduce(U256::from_be_bytes(digest.span())));
}

const char* to_string(CombineError e) {
  switch (e) {
    case CombineError::kOk: return "ok";
    case CombineError::kNoPartials: return "no partial signatures";
    case CombineError::kBadPartyId: return "invalid party id";
    case CombineError::kDuplicateParty: return "duplicate party id";
    case CombineError::kBelowThreshold: return "fewer partials than threshold";
    case CombineError::kInvalidSignature: return "invalid signature";
  }
  return "unknown";
}

CombineOutcome combine_partial_signatures_checked(
    const std::vector<PartialSignature>& partials, const Presignature& pub,
    const AffinePoint& derived_pubkey, const util::Hash256& digest, std::uint32_t threshold,
    const std::vector<U256>* precomputed_lambda, bool verify_result) {
  CombineOutcome out;
  if (partials.empty()) {
    out.error = CombineError::kNoPartials;
    return out;
  }
  std::vector<std::uint32_t> indices;
  std::unordered_set<std::uint32_t> seen;
  indices.reserve(partials.size());
  for (const auto& p : partials) {
    if (p.index == 0) {
      out.error = CombineError::kBadPartyId;
      return out;
    }
    if (!seen.insert(p.index).second) {
      out.error = CombineError::kDuplicateParty;
      return out;
    }
    indices.push_back(p.index);
  }
  if (partials.size() < threshold) {
    out.error = CombineError::kBelowThreshold;
    return out;
  }
  if (precomputed_lambda != nullptr && precomputed_lambda->size() != partials.size()) {
    throw std::invalid_argument("combine: precomputed lambda size mismatch");
  }
  const ModCtx& sc = scalar_ctx();
  std::vector<U256> lambda_storage;
  const std::vector<U256>* lambda = precomputed_lambda;
  if (lambda == nullptr) {
    lambda_storage = lagrange_coefficients_at_zero(indices);
    lambda = &lambda_storage;
  }
  U256 s(0);
  for (std::size_t i = 0; i < partials.size(); ++i) {
    s = sc.add(s, sc.mul((*lambda)[i], partials[i].s_share));
  }
  if (s.is_zero()) {
    out.error = CombineError::kInvalidSignature;
    return out;
  }
  if (s > curve_order().shifted_right(1)) {
    s = curve_order() - s;
    out.s_negated = true;
  }
  Signature sig{pub.r, s};
  if (verify_result && !verify(derived_pubkey, digest, sig)) {
    out.error = CombineError::kInvalidSignature;
    out.s_negated = false;
    return out;
  }
  out.signature = sig;
  return out;
}

std::optional<Signature> combine_partial_signatures(const std::vector<PartialSignature>& partials,
                                                    const Presignature& pub,
                                                    const AffinePoint& derived_pubkey,
                                                    const util::Hash256& digest) {
  // Legacy semantics: any number >= 1 of partials is structurally accepted
  // (threshold 1); an insufficient set fails cryptographic verification.
  auto out = combine_partial_signatures_checked(partials, pub, derived_pubkey, digest,
                                                /*threshold=*/1);
  return out.signature;
}

ThresholdEcdsaService::ThresholdEcdsaService(std::uint32_t t, std::uint32_t n, std::uint64_t seed,
                                             ThresholdEcdsaServiceConfig config)
    : rng_(seed), dealer_(t, n, rng_), config_(config) {
  PresigPoolConfig pool_config;
  pool_config.depth = config_.pool_depth;
  pool_config.low_watermark = config_.pool_low_watermark;
  pool_config.parallel_refill = config_.parallel_refill;
  // The pool gets its own forked stream: its deal sequence is then a pure
  // function of `seed`, independent of any other use of rng_.
  pool_ = std::make_unique<PresignaturePool>(dealer_, pool_config, rng_.fork());
}

ThresholdEcdsaService::~ThresholdEcdsaService() = default;

std::uint32_t ThresholdEcdsaService::threshold() const { return dealer_.threshold(); }
std::uint32_t ThresholdEcdsaService::num_parties() const { return dealer_.num_parties(); }

std::uint64_t ThresholdEcdsaService::presignatures_used() const {
  return pool_->consumed_total();
}

void ThresholdEcdsaService::set_metrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  pool_->set_metrics(registry);
}

void ThresholdEcdsaService::set_tracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  pool_->set_tracer(tracer);
}

ThresholdEcdsaService::DerivedKey ThresholdEcdsaService::derived_for(
    const DerivationPath& path) const {
  if (!config_.cache_derived_keys) {
    DerivedKey d;
    d.tweak = derivation_tweak(dealer_.master_public_key(), path);
    d.pubkey = apply_tweak(dealer_.master_public_key(), d.tweak);
    return d;
  }
  util::Bytes key = path_cache_key(path);
  {
    std::lock_guard<std::mutex> lk(derived_mu_);
    auto it = derived_cache_.find(key);
    if (it != derived_cache_.end()) return it->second;
  }
  DerivedKey d;
  d.tweak = derivation_tweak(dealer_.master_public_key(), path);
  d.pubkey = apply_tweak(dealer_.master_public_key(), d.tweak);
  std::lock_guard<std::mutex> lk(derived_mu_);
  derived_cache_.emplace(std::move(key), d);
  return d;
}

AffinePoint ThresholdEcdsaService::public_key(const DerivationPath& path) const {
  return derived_for(path).pubkey;
}

std::vector<std::uint32_t> ThresholdEcdsaService::signing_set(
    const std::vector<std::uint32_t>& participants) const {
  if (participants.size() < dealer_.threshold()) {
    throw std::invalid_argument("threshold sign: not enough participants");
  }
  std::unordered_set<std::uint32_t> seen;
  for (auto i : participants) {
    if (i == 0 || i > dealer_.num_parties() || !seen.insert(i).second) {
      throw std::invalid_argument("threshold sign: bad participant index");
    }
  }
  return std::vector<std::uint32_t>(participants.begin(),
                                    participants.begin() + dealer_.threshold());
}

std::vector<std::uint32_t> ThresholdEcdsaService::default_participants() const {
  std::vector<std::uint32_t> participants;
  participants.reserve(dealer_.threshold());
  for (std::uint32_t i = 1; i <= dealer_.threshold(); ++i) participants.push_back(i);
  return participants;
}

Signature ThresholdEcdsaService::sign_with(DealtPresignature& presig, const util::Hash256& digest,
                                           const DerivationPath& path,
                                           const std::vector<std::uint32_t>& signing) {
  if (presig.consumed) {
    throw std::logic_error("threshold sign: presignature already consumed (nonce reuse)");
  }
  presig.consumed = true;
  DerivedKey derived = derived_for(path);
  const U256 z = scalar_ctx().reduce(U256::from_be_bytes(digest.span()));
  std::vector<PartialSignature> partials;
  partials.reserve(signing.size());
  for (auto i : signing) {
    partials.push_back(compute_partial_with_z(presig.shares[i - 1], presig.pub, derived.tweak, z));
  }
  auto outcome = combine_partial_signatures_checked(partials, presig.pub, derived.pubkey, digest,
                                                    dealer_.threshold());
  if (!outcome.ok()) {
    throw std::runtime_error(std::string("threshold sign: combination failed: ") +
                             to_string(outcome.error));
  }
  return *outcome.signature;
}

Signature ThresholdEcdsaService::sign(const util::Hash256& digest, const DerivationPath& path,
                                      const std::vector<std::uint32_t>& participants) {
  auto signing = signing_set(participants);
  obs::ScopedSpan span(tracer_, "tecdsa.sign", "crypto");
  DealtPresignature presig = pool_->take();
  Signature sig = sign_with(presig, digest, path, signing);
  if (metrics_ != nullptr) metrics_->counter("tecdsa.sign.requests").inc();
  pool_->maybe_refill();
  return sig;
}

Signature ThresholdEcdsaService::sign(const util::Hash256& digest, const DerivationPath& path) {
  return sign(digest, path, default_participants());
}

Signature ThresholdEcdsaService::sign_prepared(const util::Hash256& digest,
                                               const DerivationPath& path,
                                               DealtPresignature& presig,
                                               const std::vector<std::uint32_t>& participants) {
  return sign_with(presig, digest, path, signing_set(participants));
}

std::vector<Signature> ThresholdEcdsaService::sign_batch(
    const std::vector<SignRequest>& requests, const std::vector<std::uint32_t>& participants) {
  auto signing = signing_set(participants);
  if (requests.empty()) return {};
  const std::size_t n = requests.size();

  obs::ScopedSpan span(tracer_, "tecdsa.sign", "crypto");
  span.attr("batch_size", static_cast<std::uint64_t>(n));

  // Consume presignatures in request order — element i of the batch signs
  // with exactly the presignature sign() would have used for the i-th call.
  std::vector<DealtPresignature> presigs;
  presigs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) presigs.push_back(pool_->take());

  // One Lagrange coefficient set for the whole batch (one modular inversion
  // total), and one derived-key lookup per request on the calling thread.
  std::vector<U256> lambda = lagrange_coefficients_at_zero(signing);
  std::vector<DerivedKey> derived;
  derived.reserve(n);
  for (const auto& req : requests) derived.push_back(derived_for(req.path));

  struct PerRequest {
    Signature sig;
    bool s_negated = false;
    CombineError error = CombineError::kOk;
  };
  std::vector<PerRequest> results(n);
  std::shared_ptr<parallel::ThreadPool> pool_ref = parallel::shared_pool_ref();
  parallel::parallel_for(pool_ref.get(), n, [&](std::size_t i) {
    DealtPresignature& presig = presigs[i];
    presig.consumed = true;
    const U256 z = scalar_ctx().reduce(U256::from_be_bytes(requests[i].digest.span()));
    std::vector<PartialSignature> partials;
    partials.reserve(signing.size());
    for (auto p : signing) {
      partials.push_back(compute_partial_with_z(presig.shares[p - 1], presig.pub,
                                                derived[i].tweak, z));
    }
    auto outcome =
        combine_partial_signatures_checked(partials, presig.pub, derived[i].pubkey,
                                           requests[i].digest, dealer_.threshold(), &lambda,
                                           /*verify_result=*/false);
    if (!outcome.ok()) {
      results[i].error = outcome.error;
      return;
    }
    results[i] = PerRequest{*outcome.signature, outcome.s_negated, CombineError::kOk};
  });

  for (const auto& res : results) {
    if (res.error != CombineError::kOk) {
      throw std::runtime_error(std::string("threshold sign_batch: combination failed: ") +
                               to_string(res.error));
    }
  }

  // One batched verification for the whole batch, in the tweaked form: every
  // derived key is master + tweak·G, so the multiexp stays at n + 2 points
  // however many distinct paths the batch spans. If it fails, verify
  // individually to point at the corrupt signature.
  std::vector<TweakedBatchVerifyEntry> entries;
  entries.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    AffinePoint big_r =
        results[i].s_negated ? presigs[i].pub.big_r.negated() : presigs[i].pub.big_r;
    entries.push_back(TweakedBatchVerifyEntry{derived[i].tweak, requests[i].digest,
                                              results[i].sig, big_r});
  }
  if (!batch_verify_tweaked(dealer_.master_public_key(), entries)) {
    for (std::size_t i = 0; i < n; ++i) {
      if (!verify(derived[i].pubkey, requests[i].digest, results[i].sig)) {
        throw std::runtime_error("threshold sign_batch: signature " + std::to_string(i) +
                                 " failed verification");
      }
    }
    throw std::runtime_error("threshold sign_batch: batch verification failed");
  }

  if (metrics_ != nullptr) {
    metrics_->counter("tecdsa.sign.requests").inc(n);
    metrics_->counter("tecdsa.sign.batches").inc();
  }
  pool_->maybe_refill();

  std::vector<Signature> sigs;
  sigs.reserve(n);
  for (const auto& res : results) sigs.push_back(res.sig);
  return sigs;
}

std::vector<Signature> ThresholdEcdsaService::sign_batch(const std::vector<SignRequest>& requests) {
  return sign_batch(requests, default_participants());
}

}  // namespace icbtc::crypto
