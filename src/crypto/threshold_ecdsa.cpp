#include "crypto/threshold_ecdsa.h"

#include <stdexcept>
#include <unordered_set>

#include "crypto/sha256.h"
#include "util/byteio.h"

namespace icbtc::crypto {

namespace {
U256 random_scalar_nonzero(util::Rng& rng) {
  for (;;) {
    auto bytes = rng.next_bytes(32);
    U256 v = U256::from_be_bytes(util::ByteSpan(bytes.data(), bytes.size()));
    if (!v.is_zero() && v < curve_order()) return v;
  }
}
}  // namespace

U256 derivation_tweak(const AffinePoint& master_pubkey, const DerivationPath& path) {
  if (path.empty()) return U256(0);
  // tweak = H("icbtc-derive" || compressed(master) || len-prefixed components)
  // reduced mod n. Collision-resistant domain separation suffices here.
  Sha256 h;
  const char tag[] = "icbtc-derive";
  h.update(util::ByteSpan(reinterpret_cast<const std::uint8_t*>(tag), sizeof(tag) - 1));
  auto mp = master_pubkey.compressed();
  h.update(util::ByteSpan(mp.data(), mp.size()));
  for (const auto& component : path) {
    util::ByteWriter w;
    w.u32le(static_cast<std::uint32_t>(component.size()));
    h.update(util::ByteSpan(w.data().data(), w.data().size()));
    h.update(util::ByteSpan(component.data(), component.size()));
  }
  return scalar_ctx().reduce(U256::from_be_bytes(h.finalize().span()));
}

AffinePoint derive_public_key(const AffinePoint& master_pubkey, const DerivationPath& path) {
  U256 tweak = derivation_tweak(master_pubkey, path);
  if (tweak.is_zero()) return master_pubkey;
  JacobianPoint p = JacobianPoint::from_affine(master_pubkey);
  return p.add_affine(generator_mul(tweak)).to_affine();
}

ThresholdEcdsaDealer::ThresholdEcdsaDealer(std::uint32_t t, std::uint32_t n, util::Rng& rng)
    : t_(t), n_(n) {
  if (t == 0 || t > n) throw std::invalid_argument("ThresholdEcdsaDealer: need 1 <= t <= n");
  master_secret_ = random_scalar_nonzero(rng);
  master_pub_ = generator_mul(master_secret_);
  auto shares = shamir_split(master_secret_, t, n, rng);
  key_shares_.reserve(n);
  for (const auto& s : shares) key_shares_.push_back(KeyShare{s.index, s.value});
}

std::pair<Presignature, std::vector<PresignatureShare>> ThresholdEcdsaDealer::deal_presignature(
    util::Rng& rng) {
  const ModCtx& sc = scalar_ctx();
  for (;;) {
    U256 k = random_scalar_nonzero(rng);
    AffinePoint big_r = generator_mul(k);
    U256 r = sc.reduce(big_r.x);
    if (r.is_zero()) continue;
    U256 kinv = sc.inv(k);
    U256 mu = sc.mul(kinv, master_secret_);  // k^-1 * x
    auto w_shares = shamir_split(kinv, t_, n_, rng);
    auto mu_shares = shamir_split(mu, t_, n_, rng);
    std::vector<PresignatureShare> shares;
    shares.reserve(n_);
    for (std::uint32_t i = 0; i < n_; ++i) {
      shares.push_back(PresignatureShare{w_shares[i].index, w_shares[i].value,
                                         mu_shares[i].value});
    }
    return {Presignature{big_r, r}, std::move(shares)};
  }
}

PartialSignature compute_partial_signature(const PresignatureShare& pre, const Presignature& pub,
                                           const U256& tweak, const util::Hash256& digest) {
  const ModCtx& sc = scalar_ctx();
  U256 z = sc.reduce(U256::from_be_bytes(digest.span()));
  // s_i = z*w_i + r*(mu_i + tweak*w_i): shares of k^-1(z + r(x + tweak)).
  U256 mu_derived = sc.add(pre.mu_share, sc.mul(tweak, pre.w_share));
  U256 s_share = sc.add(sc.mul(z, pre.w_share), sc.mul(pub.r, mu_derived));
  return PartialSignature{pre.index, s_share};
}

std::optional<Signature> combine_partial_signatures(const std::vector<PartialSignature>& partials,
                                                    const Presignature& pub,
                                                    const AffinePoint& derived_pubkey,
                                                    const util::Hash256& digest) {
  if (partials.empty()) return std::nullopt;
  std::vector<std::uint32_t> indices;
  std::unordered_set<std::uint32_t> seen;
  indices.reserve(partials.size());
  for (const auto& p : partials) {
    if (p.index == 0 || !seen.insert(p.index).second) return std::nullopt;
    indices.push_back(p.index);
  }
  const ModCtx& sc = scalar_ctx();
  U256 s(0);
  for (const auto& p : partials) {
    U256 lambda = lagrange_coefficient_at_zero(p.index, indices);
    s = sc.add(s, sc.mul(lambda, p.s_share));
  }
  if (s.is_zero()) return std::nullopt;
  if (s > curve_order().shifted_right(1)) s = curve_order() - s;
  Signature sig{pub.r, s};
  if (!verify(derived_pubkey, digest, sig)) return std::nullopt;
  return sig;
}

ThresholdEcdsaService::ThresholdEcdsaService(std::uint32_t t, std::uint32_t n, std::uint64_t seed)
    : rng_(seed), dealer_(t, n, rng_) {}

AffinePoint ThresholdEcdsaService::public_key(const DerivationPath& path) const {
  return derive_public_key(dealer_.master_public_key(), path);
}

Signature ThresholdEcdsaService::sign(const util::Hash256& digest, const DerivationPath& path,
                                      const std::vector<std::uint32_t>& participants) {
  if (participants.size() < dealer_.threshold()) {
    throw std::invalid_argument("threshold sign: not enough participants");
  }
  std::unordered_set<std::uint32_t> seen;
  for (auto i : participants) {
    if (i == 0 || i > dealer_.num_parties() || !seen.insert(i).second) {
      throw std::invalid_argument("threshold sign: bad participant index");
    }
  }
  auto [pub, shares] = dealer_.deal_presignature(rng_);
  ++presignatures_used_;
  U256 tweak = derivation_tweak(dealer_.master_public_key(), path);
  AffinePoint derived = public_key(path);

  std::vector<PartialSignature> partials;
  partials.reserve(participants.size());
  for (auto i : participants) {
    partials.push_back(compute_partial_signature(shares[i - 1], pub, tweak, digest));
    if (partials.size() == dealer_.threshold()) break;
  }
  auto sig = combine_partial_signatures(partials, pub, derived, digest);
  if (!sig) throw std::runtime_error("threshold sign: combination failed");
  return *sig;
}

Signature ThresholdEcdsaService::sign(const util::Hash256& digest, const DerivationPath& path) {
  std::vector<std::uint32_t> participants;
  for (std::uint32_t i = 1; i <= dealer_.threshold(); ++i) participants.push_back(i);
  return sign(digest, path, participants);
}

}  // namespace icbtc::crypto
