#include "crypto/shamir.h"

#include <stdexcept>
#include <unordered_set>

#include "crypto/secp256k1.h"

namespace icbtc::crypto {

namespace {
U256 random_scalar(util::Rng& rng) {
  for (;;) {
    auto bytes = rng.next_bytes(32);
    U256 v = U256::from_be_bytes(util::ByteSpan(bytes.data(), bytes.size()));
    if (v < curve_order()) return v;
  }
}
}  // namespace

std::vector<Share> shamir_split(const U256& secret, std::uint32_t t, std::uint32_t n,
                                util::Rng& rng) {
  if (t == 0 || t > n) throw std::invalid_argument("shamir_split: need 1 <= t <= n");
  const ModCtx& sc = scalar_ctx();
  // Polynomial f(x) = secret + a1 x + ... + a_{t-1} x^{t-1}.
  std::vector<U256> coeffs;
  coeffs.reserve(t);
  coeffs.push_back(sc.reduce(secret));
  for (std::uint32_t i = 1; i < t; ++i) coeffs.push_back(random_scalar(rng));
  return shamir_split_with_coeffs(coeffs, n);
}

std::vector<Share> shamir_split_with_coeffs(const std::vector<U256>& coeffs, std::uint32_t n) {
  if (coeffs.empty() || coeffs.size() > n) {
    throw std::invalid_argument("shamir_split_with_coeffs: need 1 <= t <= n");
  }
  const ModCtx& sc = scalar_ctx();
  std::vector<Share> shares;
  shares.reserve(n);
  for (std::uint32_t i = 1; i <= n; ++i) {
    // Horner evaluation at x = i.
    U256 x(i);
    U256 acc = coeffs.back();
    for (std::size_t j = coeffs.size() - 1; j-- > 0;) {
      acc = sc.add(sc.mul(acc, x), coeffs[j]);
    }
    shares.push_back(Share{i, acc});
  }
  return shares;
}

U256 lagrange_coefficient_at_zero(std::uint32_t index, const std::vector<std::uint32_t>& indices) {
  const ModCtx& sc = scalar_ctx();
  U256 num(1);
  U256 den(1);
  U256 xi(index);
  bool found = false;
  for (auto j : indices) {
    if (j == index) {
      found = true;
      continue;
    }
    U256 xj(j);
    num = sc.mul(num, xj);                // Π x_j
    den = sc.mul(den, sc.sub(xj, xi));    // Π (x_j - x_i)
  }
  if (!found) throw std::invalid_argument("lagrange: index not in set");
  return sc.mul(num, sc.inv(den));
}

std::vector<U256> lagrange_coefficients_at_zero(const std::vector<std::uint32_t>& indices) {
  const ModCtx& sc = scalar_ctx();
  const std::size_t n = indices.size();
  std::unordered_set<std::uint32_t> seen;
  for (auto i : indices) {
    if (i == 0 || !seen.insert(i).second) {
      throw std::invalid_argument("lagrange: invalid or duplicate index");
    }
  }
  // λ_i = (Π_{j≠i} x_j) / (Π_{j≠i} (x_j − x_i)). Collect every denominator,
  // then invert them all with one modular inversion (Montgomery's trick).
  std::vector<U256> nums(n, U256(1));
  std::vector<U256> dens(n, U256(1));
  for (std::size_t a = 0; a < n; ++a) {
    U256 xa(indices[a]);
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b) continue;
      U256 xb(indices[b]);
      nums[a] = sc.mul(nums[a], xb);
      dens[a] = sc.mul(dens[a], sc.sub(xb, xa));
    }
  }
  // prefix[i] = dens[0] * ... * dens[i-1]; invert the full product once and
  // peel per-element inverses off the back.
  std::vector<U256> prefix(n + 1, U256(1));
  for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = sc.mul(prefix[i], dens[i]);
  U256 inv_all = sc.inv(prefix[n]);
  std::vector<U256> out(n);
  for (std::size_t i = n; i-- > 0;) {
    U256 inv_i = sc.mul(inv_all, prefix[i]);
    inv_all = sc.mul(inv_all, dens[i]);
    out[i] = sc.mul(nums[i], inv_i);
  }
  return out;
}

U256 shamir_reconstruct(const std::vector<Share>& shares) {
  if (shares.empty()) throw std::invalid_argument("shamir_reconstruct: no shares");
  std::vector<std::uint32_t> indices;
  std::unordered_set<std::uint32_t> seen;
  indices.reserve(shares.size());
  for (const auto& s : shares) {
    if (s.index == 0 || !seen.insert(s.index).second) {
      throw std::invalid_argument("shamir_reconstruct: invalid or duplicate index");
    }
    indices.push_back(s.index);
  }
  const ModCtx& sc = scalar_ctx();
  U256 secret(0);
  for (const auto& s : shares) {
    U256 lambda = lagrange_coefficient_at_zero(s.index, indices);
    secret = sc.add(secret, sc.mul(lambda, s.value));
  }
  return secret;
}

}  // namespace icbtc::crypto
