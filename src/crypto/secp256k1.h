// secp256k1 group arithmetic: y^2 = x^3 + 7 over F_p.
#pragma once

#include <optional>
#include <vector>

#include "crypto/u256.h"
#include "util/bytes.h"

namespace icbtc::crypto {

/// Field prime p = 2^256 - 2^32 - 977.
const ModCtx& field_ctx();
/// Group order n.
const ModCtx& scalar_ctx();
/// The curve order as a U256.
const U256& curve_order();

/// Affine point; infinity is represented by `infinity == true`.
struct AffinePoint {
  U256 x;
  U256 y;
  bool infinity = true;

  static AffinePoint make(const U256& x, const U256& y) { return AffinePoint{x, y, false}; }

  bool operator==(const AffinePoint& o) const {
    if (infinity || o.infinity) return infinity == o.infinity;
    return x == o.x && y == o.y;
  }

  /// True if the point satisfies the curve equation (or is infinity).
  bool on_curve() const;

  /// The point with the same x and negated y (-P); infinity negates to
  /// itself. Cheap: one field subtraction.
  AffinePoint negated() const;

  /// SEC1 compressed encoding (33 bytes: 02/03 prefix + x).
  util::Bytes compressed() const;
  /// SEC1 uncompressed encoding (65 bytes: 04 prefix + x + y).
  util::Bytes uncompressed() const;
  /// Parses a SEC1 compressed or uncompressed encoding; nullopt on failure.
  static std::optional<AffinePoint> parse(util::ByteSpan data);
};

/// Jacobian point for inversion-free addition chains.
struct JacobianPoint {
  U256 x, y, z;  // infinity iff z == 0

  static JacobianPoint from_affine(const AffinePoint& p);
  static JacobianPoint infinity_point() { return JacobianPoint{U256(1), U256(1), U256(0)}; }
  bool is_infinity() const { return z.is_zero(); }

  JacobianPoint doubled() const;
  JacobianPoint add(const JacobianPoint& other) const;
  JacobianPoint add_affine(const AffinePoint& other) const;
  AffinePoint to_affine() const;
};

/// The generator point G.
const AffinePoint& generator();

/// Scalar multiplication k * P (double-and-add; not constant time).
AffinePoint scalar_mul(const U256& k, const AffinePoint& p);

/// k * G with a precomputed window table for the generator.
AffinePoint generator_mul(const U256& k);

/// u1*G + u2*P, the ECDSA verification combination.
AffinePoint double_mul(const U256& u1, const U256& u2, const AffinePoint& p);

/// Multi-scalar multiplication Σ scalars[i] * points[i] (scalars reduced mod
/// the group order) via windowed bucket accumulation (Pippenger). For large
/// batches this costs a small number of group operations per term instead of
/// a full double-and-add ladder each — the primitive behind batched signature
/// verification. Requires scalars.size() == points.size().
AffinePoint multi_mul(const std::vector<U256>& scalars, const std::vector<AffinePoint>& points);

}  // namespace icbtc::crypto
