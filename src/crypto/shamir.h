// Shamir secret sharing over the secp256k1 scalar field, the basis of the
// threshold-ECDSA key and nonce shares.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/u256.h"
#include "util/rng.h"

namespace icbtc::crypto {

struct Share {
  std::uint32_t index = 0;  // participant index, x-coordinate (>= 1)
  U256 value;               // polynomial evaluation at `index`
};

/// Splits `secret` into n shares with reconstruction threshold t (any t
/// shares reconstruct; t-1 reveal nothing). Requires 1 <= t <= n and an index
/// space that fits the scalar field (trivially true).
std::vector<Share> shamir_split(const U256& secret, std::uint32_t t, std::uint32_t n,
                                util::Rng& rng);

/// Reconstructs the secret from at least t shares with distinct indices.
/// Throws std::invalid_argument on duplicate indices or an empty set.
U256 shamir_reconstruct(const std::vector<Share>& shares);

/// Evaluates the polynomial f(x) = coeffs[0] + coeffs[1] x + ... at x = 1..n.
/// Pure function of its inputs (no RNG): the deterministic core of
/// shamir_split, exposed so callers can draw randomness up front and run the
/// evaluations later (possibly on another thread). coeffs.size() is the
/// threshold t; coeffs[0] is the secret.
std::vector<Share> shamir_split_with_coeffs(const std::vector<U256>& coeffs, std::uint32_t n);

/// The Lagrange coefficient λ_i for interpolating at x = 0 from the given set
/// of participant indices; used to recombine partial threshold signatures.
U256 lagrange_coefficient_at_zero(std::uint32_t index, const std::vector<std::uint32_t>& indices);

/// All Lagrange coefficients for the index set at once, in input order, using
/// one modular inversion total (Montgomery batch inversion) instead of one
/// per index — the recombination hot path when signing in batches. Throws
/// std::invalid_argument on duplicate or zero indices.
std::vector<U256> lagrange_coefficients_at_zero(const std::vector<std::uint32_t>& indices);

}  // namespace icbtc::crypto
