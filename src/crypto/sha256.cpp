#include "crypto/sha256.h"

#include <algorithm>
#include <atomic>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define ICBTC_SHA256_X86 1
#include <immintrin.h>
#endif

namespace icbtc::crypto {

namespace {

constexpr std::uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
    0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
    0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
    0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
    0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
    0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
    0xc67178f2};

constexpr std::uint32_t kIv[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                                  0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

inline std::uint32_t rotr(std::uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }

inline std::uint32_t load_be32(const std::uint8_t* p) {
  return (std::uint32_t(p[0]) << 24) | (std::uint32_t(p[1]) << 16) | (std::uint32_t(p[2]) << 8) |
         std::uint32_t(p[3]);
}

inline void store_be32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

using TransformFn = void (*)(std::uint32_t* state, const std::uint8_t* data, std::size_t nblocks);

// ---------------------------------------------------------------------------
// Portable transform — straight FIPS 180-4 loop.
// ---------------------------------------------------------------------------

void transform_portable(std::uint32_t* state, const std::uint8_t* data, std::size_t nblocks) {
  while (nblocks-- > 0) {
    std::uint32_t w[64];
    for (int i = 0; i < 16; ++i) w[i] = load_be32(data + 4 * i);
    for (int i = 16; i < 64; ++i) {
      std::uint32_t s0 = rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      std::uint32_t s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];

    for (int i = 0; i < 64; ++i) {
      std::uint32_t S1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
      std::uint32_t ch = (e & f) ^ (~e & g);
      std::uint32_t temp1 = h + S1 + ch + kK[i] + w[i];
      std::uint32_t S0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
      std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      std::uint32_t temp2 = S0 + maj;
      h = g;
      g = f;
      f = e;
      e = d + temp1;
      d = c;
      c = b;
      b = a;
      a = temp1 + temp2;
    }

    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
    data += 64;
  }
}

#if defined(ICBTC_SHA256_X86) && defined(__GNUC__)

// ---------------------------------------------------------------------------
// SSE4-tuned transform — fully unrolled rounds with a 16-word message ring,
// so the compiler keeps the working set in registers and schedules across
// rounds (the 8-way variable shuffle of the portable loop disappears).
// ---------------------------------------------------------------------------

#define ICBTC_SHA_RND(a, b, c, d, e, f, g, h, ki, wi)                         \
  do {                                                                        \
    std::uint32_t t1 = (h) + (rotr((e), 6) ^ rotr((e), 11) ^ rotr((e), 25)) + \
                       (((e) & (f)) ^ (~(e) & (g))) + (ki) + (wi);            \
    std::uint32_t t2 = (rotr((a), 2) ^ rotr((a), 13) ^ rotr((a), 22)) +       \
                       (((a) & (b)) ^ ((a) & (c)) ^ ((b) & (c)));             \
    (d) += t1;                                                                \
    (h) = t1 + t2;                                                            \
  } while (0)

#define ICBTC_SHA_W(i)                                                                  \
  (w[(i) & 15] += (rotr(w[((i) - 2) & 15], 17) ^ rotr(w[((i) - 2) & 15], 19) ^          \
                   (w[((i) - 2) & 15] >> 10)) +                                         \
                  w[((i) - 7) & 15] +                                                   \
                  (rotr(w[((i) - 15) & 15], 7) ^ rotr(w[((i) - 15) & 15], 18) ^         \
                   (w[((i) - 15) & 15] >> 3)))

__attribute__((target("sse4.1"))) void transform_sse4(std::uint32_t* state,
                                                      const std::uint8_t* data,
                                                      std::size_t nblocks) {
  std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
  std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];
  while (nblocks-- > 0) {
    std::uint32_t w[16];
    for (int i = 0; i < 16; ++i) w[i] = load_be32(data + 4 * i);

    ICBTC_SHA_RND(a, b, c, d, e, f, g, h, kK[0], w[0]);
    ICBTC_SHA_RND(h, a, b, c, d, e, f, g, kK[1], w[1]);
    ICBTC_SHA_RND(g, h, a, b, c, d, e, f, kK[2], w[2]);
    ICBTC_SHA_RND(f, g, h, a, b, c, d, e, kK[3], w[3]);
    ICBTC_SHA_RND(e, f, g, h, a, b, c, d, kK[4], w[4]);
    ICBTC_SHA_RND(d, e, f, g, h, a, b, c, kK[5], w[5]);
    ICBTC_SHA_RND(c, d, e, f, g, h, a, b, kK[6], w[6]);
    ICBTC_SHA_RND(b, c, d, e, f, g, h, a, kK[7], w[7]);
    ICBTC_SHA_RND(a, b, c, d, e, f, g, h, kK[8], w[8]);
    ICBTC_SHA_RND(h, a, b, c, d, e, f, g, kK[9], w[9]);
    ICBTC_SHA_RND(g, h, a, b, c, d, e, f, kK[10], w[10]);
    ICBTC_SHA_RND(f, g, h, a, b, c, d, e, kK[11], w[11]);
    ICBTC_SHA_RND(e, f, g, h, a, b, c, d, kK[12], w[12]);
    ICBTC_SHA_RND(d, e, f, g, h, a, b, c, kK[13], w[13]);
    ICBTC_SHA_RND(c, d, e, f, g, h, a, b, kK[14], w[14]);
    ICBTC_SHA_RND(b, c, d, e, f, g, h, a, kK[15], w[15]);

    for (int i = 16; i < 64; i += 16) {
      ICBTC_SHA_RND(a, b, c, d, e, f, g, h, kK[i + 0], ICBTC_SHA_W(i + 0));
      ICBTC_SHA_RND(h, a, b, c, d, e, f, g, kK[i + 1], ICBTC_SHA_W(i + 1));
      ICBTC_SHA_RND(g, h, a, b, c, d, e, f, kK[i + 2], ICBTC_SHA_W(i + 2));
      ICBTC_SHA_RND(f, g, h, a, b, c, d, e, kK[i + 3], ICBTC_SHA_W(i + 3));
      ICBTC_SHA_RND(e, f, g, h, a, b, c, d, kK[i + 4], ICBTC_SHA_W(i + 4));
      ICBTC_SHA_RND(d, e, f, g, h, a, b, c, kK[i + 5], ICBTC_SHA_W(i + 5));
      ICBTC_SHA_RND(c, d, e, f, g, h, a, b, kK[i + 6], ICBTC_SHA_W(i + 6));
      ICBTC_SHA_RND(b, c, d, e, f, g, h, a, kK[i + 7], ICBTC_SHA_W(i + 7));
      ICBTC_SHA_RND(a, b, c, d, e, f, g, h, kK[i + 8], ICBTC_SHA_W(i + 8));
      ICBTC_SHA_RND(h, a, b, c, d, e, f, g, kK[i + 9], ICBTC_SHA_W(i + 9));
      ICBTC_SHA_RND(g, h, a, b, c, d, e, f, kK[i + 10], ICBTC_SHA_W(i + 10));
      ICBTC_SHA_RND(f, g, h, a, b, c, d, e, kK[i + 11], ICBTC_SHA_W(i + 11));
      ICBTC_SHA_RND(e, f, g, h, a, b, c, d, kK[i + 12], ICBTC_SHA_W(i + 12));
      ICBTC_SHA_RND(d, e, f, g, h, a, b, c, kK[i + 13], ICBTC_SHA_W(i + 13));
      ICBTC_SHA_RND(c, d, e, f, g, h, a, b, kK[i + 14], ICBTC_SHA_W(i + 14));
      ICBTC_SHA_RND(b, c, d, e, f, g, h, a, kK[i + 15], ICBTC_SHA_W(i + 15));
    }

    a = (state[0] += a);
    b = (state[1] += b);
    c = (state[2] += c);
    d = (state[3] += d);
    e = (state[4] += e);
    f = (state[5] += f);
    g = (state[6] += g);
    h = (state[7] += h);
    data += 64;
  }
}

#undef ICBTC_SHA_RND
#undef ICBTC_SHA_W

// ---------------------------------------------------------------------------
// SHA-NI transform — x86 SHA extensions; the canonical two-lane layout with
// sha256rnds2/sha256msg1/sha256msg2. Round constants come from the same kK
// table (a loadu of four consecutive words matches the lane order).
// ---------------------------------------------------------------------------

#define ICBTC_SHANI_QROUND(ki, mcur, mprev, mnext)                                         \
  do {                                                                                     \
    MSG = _mm_add_epi32(mcur, _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kK[ki]))); \
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);                                   \
    TMP = _mm_alignr_epi8(mcur, mprev, 4);                                                 \
    mnext = _mm_add_epi32(mnext, TMP);                                                     \
    mnext = _mm_sha256msg2_epu32(mnext, mcur);                                             \
    MSG = _mm_shuffle_epi32(MSG, 0x0E);                                                    \
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);                                   \
    mprev = _mm_sha256msg1_epu32(mprev, mcur);                                             \
  } while (0)

__attribute__((target("sha,sse4.1"))) void transform_shani(std::uint32_t* state,
                                                           const std::uint8_t* data,
                                                           std::size_t nblocks) {
  const __m128i kShuffle =
      _mm_set_epi64x(0x0c0d0e0f08090a0bLL, 0x0405060700010203LL);  // big-endian word loads

  __m128i TMP = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i STATE1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));

  TMP = _mm_shuffle_epi32(TMP, 0xB1);                // CDAB
  STATE1 = _mm_shuffle_epi32(STATE1, 0x1B);          // EFGH
  __m128i STATE0 = _mm_alignr_epi8(TMP, STATE1, 8);  // ABEF
  STATE1 = _mm_blend_epi16(STATE1, TMP, 0xF0);       // CDGH

  __m128i MSG, MSG0, MSG1, MSG2, MSG3;
  while (nblocks-- > 0) {
    const __m128i ABEF_SAVE = STATE0;
    const __m128i CDGH_SAVE = STATE1;

    // Rounds 0-3
    MSG0 =
        _mm_shuffle_epi8(_mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 0)), kShuffle);
    MSG = _mm_add_epi32(MSG0, _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kK[0])));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);

    // Rounds 4-7
    MSG1 =
        _mm_shuffle_epi8(_mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16)), kShuffle);
    MSG = _mm_add_epi32(MSG1, _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kK[4])));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG0 = _mm_sha256msg1_epu32(MSG0, MSG1);

    // Rounds 8-11
    MSG2 =
        _mm_shuffle_epi8(_mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32)), kShuffle);
    MSG = _mm_add_epi32(MSG2, _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kK[8])));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG1 = _mm_sha256msg1_epu32(MSG1, MSG2);

    // Rounds 12-15
    MSG3 =
        _mm_shuffle_epi8(_mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48)), kShuffle);
    ICBTC_SHANI_QROUND(12, MSG3, MSG2, MSG0);
    // Rounds 16-51
    ICBTC_SHANI_QROUND(16, MSG0, MSG3, MSG1);
    ICBTC_SHANI_QROUND(20, MSG1, MSG0, MSG2);
    ICBTC_SHANI_QROUND(24, MSG2, MSG1, MSG3);
    ICBTC_SHANI_QROUND(28, MSG3, MSG2, MSG0);
    ICBTC_SHANI_QROUND(32, MSG0, MSG3, MSG1);
    ICBTC_SHANI_QROUND(36, MSG1, MSG0, MSG2);
    ICBTC_SHANI_QROUND(40, MSG2, MSG1, MSG3);
    ICBTC_SHANI_QROUND(44, MSG3, MSG2, MSG0);
    ICBTC_SHANI_QROUND(48, MSG0, MSG3, MSG1);
    // Rounds 52-59 (the remaining schedule words are already final)
    ICBTC_SHANI_QROUND(52, MSG1, MSG0, MSG2);
    ICBTC_SHANI_QROUND(56, MSG2, MSG1, MSG3);

    // Rounds 60-63
    MSG = _mm_add_epi32(MSG3, _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kK[60])));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);

    STATE0 = _mm_add_epi32(STATE0, ABEF_SAVE);
    STATE1 = _mm_add_epi32(STATE1, CDGH_SAVE);
    data += 64;
  }

  TMP = _mm_shuffle_epi32(STATE0, 0x1B);        // FEBA
  STATE1 = _mm_shuffle_epi32(STATE1, 0xB1);     // DCHG
  STATE0 = _mm_blend_epi16(TMP, STATE1, 0xF0);  // DCBA
  STATE1 = _mm_alignr_epi8(STATE1, TMP, 8);     // HGFE

  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), STATE0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), STATE1);
}

#undef ICBTC_SHANI_QROUND

bool cpu_supports(Sha256Impl impl) {
  switch (impl) {
    case Sha256Impl::kPortable:
      return true;
    case Sha256Impl::kSse4:
      return __builtin_cpu_supports("sse4.1");
    case Sha256Impl::kShaNi:
      return __builtin_cpu_supports("sha") && __builtin_cpu_supports("sse4.1");
  }
  return false;
}

TransformFn transform_for(Sha256Impl impl) {
  switch (impl) {
    case Sha256Impl::kShaNi:
      return &transform_shani;
    case Sha256Impl::kSse4:
      return &transform_sse4;
    case Sha256Impl::kPortable:
      break;
  }
  return &transform_portable;
}

#else  // !x86 or non-GNU compiler: portable only.

bool cpu_supports(Sha256Impl impl) { return impl == Sha256Impl::kPortable; }
TransformFn transform_for(Sha256Impl) { return &transform_portable; }

#endif

Sha256Impl detect_best_impl() {
  if (cpu_supports(Sha256Impl::kShaNi)) return Sha256Impl::kShaNi;
  if (cpu_supports(Sha256Impl::kSse4)) return Sha256Impl::kSse4;
  return Sha256Impl::kPortable;
}

// The active transform. Relaxed atomics suffice: every candidate function is
// bit-identical, so a racy read during set_sha256_impl still hashes correctly.
std::atomic<TransformFn> g_transform{nullptr};
std::atomic<int> g_active_impl{-1};

TransformFn active_transform() {
  TransformFn fn = g_transform.load(std::memory_order_relaxed);
  if (fn == nullptr) {
    Sha256Impl best = detect_best_impl();
    g_active_impl.store(static_cast<int>(best), std::memory_order_relaxed);
    fn = transform_for(best);
    g_transform.store(fn, std::memory_order_relaxed);
  }
  return fn;
}

/// Second SHA-256 pass over a 32-byte first-pass digest: one compression of
/// the padded single block, straight from the state words (no stream state).
Hash256 double_finish(const std::uint32_t first[8]) {
  std::uint8_t block[64];
  for (int i = 0; i < 8; ++i) store_be32(block + 4 * i, first[i]);
  block[32] = 0x80;
  std::memset(block + 33, 0, 29);
  block[62] = 0x01;  // message length: 256 bits
  block[63] = 0x00;

  std::uint32_t s[8];
  std::memcpy(s, kIv, sizeof(s));
  active_transform()(s, block, 1);

  Hash256 out;
  for (int i = 0; i < 8; ++i) store_be32(out.data.data() + 4 * i, s[i]);
  return out;
}

}  // namespace

Sha256Impl sha256_best_impl() { return detect_best_impl(); }

Sha256Impl sha256_active_impl() {
  active_transform();  // force detection
  return static_cast<Sha256Impl>(g_active_impl.load(std::memory_order_relaxed));
}

bool set_sha256_impl(Sha256Impl impl) {
  if (!cpu_supports(impl)) return false;
  g_active_impl.store(static_cast<int>(impl), std::memory_order_relaxed);
  g_transform.store(transform_for(impl), std::memory_order_relaxed);
  return true;
}

const char* to_string(Sha256Impl impl) {
  switch (impl) {
    case Sha256Impl::kPortable:
      return "portable";
    case Sha256Impl::kSse4:
      return "sse4";
    case Sha256Impl::kShaNi:
      return "sha-ni";
  }
  return "unknown";
}

void Sha256::reset() {
  std::memcpy(state_, kIv, sizeof(state_));
  total_len_ = 0;
  buffer_len_ = 0;
}

Sha256& Sha256::update(ByteSpan data) {
  TransformFn transform = active_transform();
  total_len_ += data.size();
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();

  if (buffer_len_ > 0) {
    std::size_t take = std::min(n, 64 - buffer_len_);
    std::memcpy(buffer_ + buffer_len_, p, take);
    buffer_len_ += take;
    p += take;
    n -= take;
    if (buffer_len_ == 64) {
      transform(state_, buffer_, 1);
      buffer_len_ = 0;
    }
  }
  if (n >= 64) {
    std::size_t blocks = n / 64;
    transform(state_, p, blocks);
    p += blocks * 64;
    n -= blocks * 64;
  }
  if (n > 0) {
    std::memcpy(buffer_, p, n);
    buffer_len_ = n;
  }
  return *this;
}

Hash256 Sha256::finalize() {
  std::uint64_t bit_len = total_len_ * 8;
  std::uint8_t pad[72];
  std::size_t pad_len = (buffer_len_ < 56) ? (56 - buffer_len_) : (120 - buffer_len_);
  pad[0] = 0x80;
  std::memset(pad + 1, 0, pad_len - 1);
  for (int i = 0; i < 8; ++i) pad[pad_len + i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  update(ByteSpan(pad, pad_len + 8));

  Hash256 out;
  for (int i = 0; i < 8; ++i) store_be32(out.data.data() + 4 * i, state_[i]);
  return out;
}

Hash256 sha256d(ByteSpan data) {
  // First pass streams over `data` in place; the second pass compresses the
  // resulting state words directly — no Hash256 round-trip through
  // update()/finalize() and no intermediate buffer copies.
  TransformFn transform = active_transform();
  std::uint32_t s[8];
  std::memcpy(s, kIv, sizeof(s));

  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  std::size_t blocks = n / 64;
  if (blocks > 0) {
    transform(s, p, blocks);
    p += blocks * 64;
    n -= blocks * 64;
  }

  // Pad the tail (fewer than 64 bytes remain) into at most two blocks.
  std::uint8_t tail[128];
  if (n > 0) std::memcpy(tail, p, n);
  tail[n] = 0x80;
  std::size_t tail_blocks = (n < 56) ? 1 : 2;
  std::memset(tail + n + 1, 0, tail_blocks * 64 - n - 1 - 8);
  std::uint64_t bit_len = static_cast<std::uint64_t>(data.size()) * 8;
  for (int i = 0; i < 8; ++i)
    tail[tail_blocks * 64 - 8 + i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  transform(s, tail, tail_blocks);

  return double_finish(s);
}

Hash256 sha256d_64(const std::uint8_t* data64) {
  TransformFn transform = active_transform();
  std::uint32_t s[8];
  std::memcpy(s, kIv, sizeof(s));
  transform(s, data64, 1);

  // Padding block for a 64-byte message: 0x80, zeros, 512-bit length.
  static constexpr std::uint8_t kPad512[64] = {
      0x80, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
      0,    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
      0,    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0x02, 0x00};
  transform(s, kPad512, 1);

  return double_finish(s);
}

Hash256 hmac_sha256(ByteSpan key, ByteSpan data) {
  std::uint8_t k[64] = {0};
  if (key.size() > 64) {
    Hash256 kh = Sha256::hash(key);
    std::memcpy(k, kh.data.data(), 32);
  } else {
    std::memcpy(k, key.data(), key.size());
  }
  std::uint8_t ipad[64], opad[64];
  for (int i = 0; i < 64; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }
  Hash256 inner = Sha256().update(ByteSpan(ipad, 64)).update(data).finalize();
  return Sha256().update(ByteSpan(opad, 64)).update(inner.span()).finalize();
}

}  // namespace icbtc::crypto
