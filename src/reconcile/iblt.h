// Invertible Bloom Lookup Table over transaction slices.
//
// Each slice is hashed into kHashes cells; a cell accumulates (count,
// XOR-of-keys, XOR-of-checksums, XOR-of-payloads). Subtracting the receiver's
// table from the sender's leaves only the symmetric difference, which is
// recovered by repeatedly "peeling" pure cells (|count| == 1 and matching
// checksum). Peeling fails — detectably, never silently — when the
// difference exceeds what the cell count can support (Eppstein et al.,
// SIGCOMM'11; cell layout after rustyrussell's bitcoin-iblt).
#pragma once

#include <cstdint>
#include <vector>

#include "reconcile/txslice.h"
#include "util/byteio.h"

namespace icbtc::reconcile {

/// Hash functions per slice; 3 gives the usual ~1.3-1.5x cell overhead.
constexpr std::size_t kIbltHashes = 3;

/// What a destructive peel recovered from a subtracted table.
struct PeelResult {
  /// True when every cell drained to zero: `added`/`removed` are exactly the
  /// symmetric difference. False means the sketch was undersized (or
  /// adversarial) and the lists are partial.
  bool complete = false;
  /// Slices present in the minuend only (the sender's side after subtract).
  std::vector<TxSlice> added;
  /// Slices present in the subtrahend only (the receiver's side).
  std::vector<TxSlice> removed;
};

class Iblt {
 public:
  /// `cells` is clamped up to a small minimum so tiny sketches stay
  /// decodable; `salt` seeds cell placement and checksums and must match
  /// between the two sides of a subtract.
  explicit Iblt(std::size_t cells, std::uint32_t salt = 0);
  /// Minimum-size empty table (for default-constructed containers).
  Iblt() : Iblt(0, 0) {}

  std::size_t cell_count() const { return cells_.size(); }
  std::uint32_t salt() const { return salt_; }

  void insert(const TxSlice& slice);
  void erase(const TxSlice& slice);

  /// this -= other. Requires identical cell count and salt.
  Iblt& subtract(const Iblt& other);

  /// Non-destructive peel (works on a copy).
  PeelResult peel() const;

  /// True when every cell is zero (e.g. after subtracting an identical set).
  bool empty() const;

  /// Serialized wire size in bytes; the network layer charges this for the
  /// sketch portion of a compact block.
  std::size_t serialized_size() const;

  void serialize(util::ByteWriter& w) const;
  static Iblt deserialize(util::ByteReader& r);

  bool operator==(const Iblt&) const = default;

 private:
  struct Cell {
    std::int32_t count = 0;
    std::uint64_t key_sum = 0;
    std::uint32_t check_sum = 0;
    std::array<std::uint8_t, kSliceBytes> payload_sum{};

    bool operator==(const Cell&) const = default;
  };

  std::uint32_t checksum(const TxSlice& slice) const;
  void cell_indexes(const TxSlice& slice, std::size_t out[kIbltHashes]) const;
  void apply(const TxSlice& slice, int direction);

  std::uint32_t salt_ = 0;
  std::vector<Cell> cells_;
};

}  // namespace icbtc::reconcile
