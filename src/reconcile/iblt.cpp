#include "reconcile/iblt.h"

#include <algorithm>
#include <stdexcept>

#include "reconcile/murmur.h"

namespace icbtc::reconcile {

namespace {

constexpr std::size_t kMinCells = 4;
constexpr std::uint32_t kChecksumSeed = 0x6b43a9b5;

/// Flattens a slice to bytes for hashing (key LE, then payload).
std::size_t flatten(const TxSlice& slice, std::uint8_t out[8 + kSliceBytes]) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(slice.key >> (8 * i));
  std::copy(slice.payload.begin(), slice.payload.end(), out + 8);
  return 8 + kSliceBytes;
}

}  // namespace

Iblt::Iblt(std::size_t cells, std::uint32_t salt)
    : salt_(salt), cells_(std::max(cells, kMinCells)) {}

std::uint32_t Iblt::checksum(const TxSlice& slice) const {
  std::uint8_t buf[8 + kSliceBytes];
  std::size_t n = flatten(slice, buf);
  return murmur3_32(salt_ ^ kChecksumSeed, util::ByteSpan(buf, n));
}

void Iblt::cell_indexes(const TxSlice& slice, std::size_t out[kIbltHashes]) const {
  std::uint8_t buf[8 + kSliceBytes];
  std::size_t n = flatten(slice, buf);
  for (std::size_t i = 0; i < kIbltHashes; ++i) {
    out[i] = murmur3_32(salt_ + static_cast<std::uint32_t>(i) * 0x9e3779b9u,
                        util::ByteSpan(buf, n)) %
             cells_.size();
  }
}

void Iblt::apply(const TxSlice& slice, int direction) {
  std::size_t idx[kIbltHashes];
  cell_indexes(slice, idx);
  std::uint32_t check = checksum(slice);
  for (std::size_t i = 0; i < kIbltHashes; ++i) {
    Cell& cell = cells_[idx[i]];
    cell.count += direction;
    cell.key_sum ^= slice.key;
    cell.check_sum ^= check;
    for (std::size_t b = 0; b < kSliceBytes; ++b) cell.payload_sum[b] ^= slice.payload[b];
  }
}

void Iblt::insert(const TxSlice& slice) { apply(slice, +1); }

void Iblt::erase(const TxSlice& slice) { apply(slice, -1); }

Iblt& Iblt::subtract(const Iblt& other) {
  if (other.cells_.size() != cells_.size() || other.salt_ != salt_) {
    throw std::invalid_argument("Iblt::subtract: mismatched geometry");
  }
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    Cell& a = cells_[i];
    const Cell& b = other.cells_[i];
    a.count -= b.count;
    a.key_sum ^= b.key_sum;
    a.check_sum ^= b.check_sum;
    for (std::size_t p = 0; p < kSliceBytes; ++p) a.payload_sum[p] ^= b.payload_sum[p];
  }
  return *this;
}

bool Iblt::empty() const {
  for (const Cell& c : cells_) {
    if (c.count != 0 || c.key_sum != 0 || c.check_sum != 0) return false;
    for (std::uint8_t b : c.payload_sum) {
      if (b != 0) return false;
    }
  }
  return true;
}

PeelResult Iblt::peel() const {
  Iblt work = *this;
  PeelResult result;

  auto pure = [&work](std::size_t n) {
    const Cell& c = work.cells_[n];
    if (c.count != 1 && c.count != -1) return false;
    TxSlice s{c.key_sum, c.payload_sum};
    return work.checksum(s) == c.check_sum;
  };

  std::vector<std::size_t> queue;
  for (std::size_t i = 0; i < work.cells_.size(); ++i) {
    if (pure(i)) queue.push_back(i);
  }

  while (!queue.empty()) {
    std::size_t n = queue.back();
    queue.pop_back();
    if (!pure(n)) continue;  // stale entry: a previous peel changed this cell

    const Cell& c = work.cells_[n];
    TxSlice slice{c.key_sum, c.payload_sum};
    int direction = c.count;  // +1: sender-only, -1: receiver-only
    (direction > 0 ? result.added : result.removed).push_back(slice);

    std::size_t idx[kIbltHashes];
    work.cell_indexes(slice, idx);
    work.apply(slice, -direction);
    for (std::size_t i = 0; i < kIbltHashes; ++i) {
      if (pure(idx[i])) queue.push_back(idx[i]);
    }
  }

  result.complete = work.empty();
  return result;
}

std::size_t Iblt::serialized_size() const {
  return 8 + cells_.size() * (4 + 8 + 4 + kSliceBytes);
}

void Iblt::serialize(util::ByteWriter& w) const {
  w.u32le(static_cast<std::uint32_t>(cells_.size()));
  w.u32le(salt_);
  for (const Cell& c : cells_) {
    w.i32le(c.count);
    w.u64le(c.key_sum);
    w.u32le(c.check_sum);
    w.bytes(util::ByteSpan(c.payload_sum.data(), c.payload_sum.size()));
  }
}

Iblt Iblt::deserialize(util::ByteReader& r) {
  std::uint32_t cells = r.u32le();
  std::uint32_t salt = r.u32le();
  if (cells < kMinCells || cells > (1u << 24)) {
    throw util::DecodeError("Iblt: implausible cell count");
  }
  Iblt out(cells, salt);
  for (std::uint32_t i = 0; i < cells; ++i) {
    Cell& c = out.cells_[i];
    c.count = r.i32le();
    c.key_sum = r.u64le();
    c.check_sum = r.u32le();
    auto payload = r.bytes(kSliceBytes);
    std::copy(payload.begin(), payload.end(), c.payload_sum.begin());
  }
  return out;
}

}  // namespace icbtc::reconcile
