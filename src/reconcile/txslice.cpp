#include "reconcile/txslice.h"

#include <algorithm>

#include "reconcile/murmur.h"

namespace icbtc::reconcile {

std::uint64_t short_tx_id(const util::Hash256& txid, std::uint64_t salt) {
  std::uint32_t lo = murmur3_32(static_cast<std::uint32_t>(salt), txid.span());
  std::uint32_t hi = murmur3_32(static_cast<std::uint32_t>(salt >> 32) ^ 0x5bd1e995u, txid.span());
  return ((static_cast<std::uint64_t>(hi) << 32) | lo) & kShortIdMask;
}

std::size_t slice_count(std::size_t serialized_size) {
  return (4 + serialized_size + kSliceBytes - 1) / kSliceBytes;
}

std::vector<TxSlice> slice_tx(const bitcoin::Transaction& tx, std::uint64_t salt) {
  util::Bytes raw = tx.serialize();
  std::uint64_t id = short_tx_id(tx.txid(), salt);
  std::size_t n = slice_count(raw.size());

  util::Bytes stream;
  stream.reserve(n * kSliceBytes);
  std::uint32_t len = static_cast<std::uint32_t>(raw.size());
  for (int i = 0; i < 4; ++i) stream.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  util::append(stream, raw);
  stream.resize(n * kSliceBytes, 0);

  std::vector<TxSlice> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i].key = (id << 16) | static_cast<std::uint16_t>(i);
    std::copy_n(stream.begin() + static_cast<std::ptrdiff_t>(i * kSliceBytes), kSliceBytes,
                out[i].payload.begin());
  }
  return out;
}

std::optional<bitcoin::Transaction> reassemble_tx(const std::vector<TxSlice>& slices) {
  if (slices.empty()) return std::nullopt;
  std::vector<const TxSlice*> ordered(slices.size(), nullptr);
  for (const auto& s : slices) {
    std::uint16_t frag = s.fragment();
    if (frag >= ordered.size() || ordered[frag] != nullptr) return std::nullopt;
    ordered[frag] = &s;
  }

  std::uint32_t len = 0;
  for (int i = 3; i >= 0; --i) {
    len = (len << 8) | ordered[0]->payload[static_cast<std::size_t>(i)];
  }
  if (slice_count(len) != slices.size()) return std::nullopt;

  util::Bytes stream;
  stream.reserve(slices.size() * kSliceBytes);
  for (const auto* s : ordered) util::append(stream, s->payload);
  // Padding must be zero, or the slices were corrupted / mixed up.
  for (std::size_t i = 4 + len; i < stream.size(); ++i) {
    if (stream[i] != 0) return std::nullopt;
  }
  try {
    return bitcoin::Transaction::parse(util::ByteSpan(stream.data() + 4, len));
  } catch (const util::DecodeError&) {
    return std::nullopt;
  }
}

std::map<std::uint64_t, bitcoin::Transaction> reassemble_all(const std::vector<TxSlice>& slices) {
  std::map<std::uint64_t, std::vector<TxSlice>> grouped;
  for (const auto& s : slices) grouped[s.short_id()].push_back(s);
  std::map<std::uint64_t, bitcoin::Transaction> out;
  for (auto& [id, group] : grouped) {
    if (auto tx = reassemble_tx(group)) out.emplace(id, std::move(*tx));
  }
  return out;
}

}  // namespace icbtc::reconcile
