// Fixed-size transaction slices: the unit of IBLT set reconciliation.
//
// A transaction is serialized, length-prefixed, zero-padded to a multiple of
// kSliceBytes, and cut into slices. Each slice carries a key combining the
// transaction's salted 48-bit short id with the slice's fragment index, so a
// peeled slice identifies both the transaction it belongs to and its position
// in the reassembly buffer (rustyrussell's bitcoin-iblt layout).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "bitcoin/transaction.h"

namespace icbtc::reconcile {

/// Payload bytes per slice. Small enough that a one-slice divergence costs
/// little sketch, large enough that a typical P2PKH transaction is 4 slices.
constexpr std::size_t kSliceBytes = 64;

/// Mask for the 48-bit short-id space.
constexpr std::uint64_t kShortIdMask = (std::uint64_t{1} << 48) - 1;

/// Salted 48-bit short transaction id. The salt is chosen per block by the
/// encoder so id collisions cannot be precomputed and differ between blocks.
std::uint64_t short_tx_id(const util::Hash256& txid, std::uint64_t salt);

/// One reconciliation item: a slice key plus kSliceBytes of payload.
struct TxSlice {
  /// short id (upper 48 bits) | fragment index (lower 16 bits).
  std::uint64_t key = 0;
  std::array<std::uint8_t, kSliceBytes> payload{};

  std::uint64_t short_id() const { return key >> 16; }
  std::uint16_t fragment() const { return static_cast<std::uint16_t>(key & 0xffff); }

  bool operator==(const TxSlice&) const = default;
};

/// Number of slices a transaction of `serialized_size` bytes occupies
/// (4-byte length prefix included).
std::size_t slice_count(std::size_t serialized_size);

/// Cuts `tx` into slices under `salt`. The payload stream is
/// u32le(serialized size) || serialization || zero padding.
std::vector<TxSlice> slice_tx(const bitcoin::Transaction& tx, std::uint64_t salt);

/// Reassembles one transaction from the slices of a single short id.
/// Fragments may arrive in any order; returns nullopt when fragments are
/// missing, the length prefix is inconsistent, or the bytes do not parse.
std::optional<bitcoin::Transaction> reassemble_tx(const std::vector<TxSlice>& slices);

/// Groups peeled slices by short id and reassembles every complete
/// transaction. Ids whose slices do not form a valid transaction are skipped.
std::map<std::uint64_t, bitcoin::Transaction> reassemble_all(const std::vector<TxSlice>& slices);

}  // namespace icbtc::reconcile
