// Continuous transaction-relay reconciliation (Erlay-style; Naumenko et al.,
// "Bandwidth-Efficient Transaction Relay for Bitcoin").
//
// Instead of flooding an inv per transaction per peer, each node keeps a
// per-peer *reconciliation set* — the transactions it would have announced to
// that peer but deferred — and on a cadence exchanges a compact sketch of the
// salted 48-bit short ids in that set. Subtracting the two sides' sketches
// leaves the symmetric difference; peeling it tells each side exactly which
// transactions the other is missing. A sketch cell carries only (count,
// id_sum, check_sum) — 13 wire bytes — so reconciling a diff of d
// transactions costs ~20·d bytes per link instead of 36 bytes per
// transaction per link of flooding.
//
// Decode failure (undersized sketch) is detectable, never silent; the
// protocol then bisects the set by short-id parity (doubling effective
// capacity) and, if even a half fails, falls back to a full inv of the set.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "util/bytes.h"

namespace icbtc::reconcile {

/// Hash functions per id; 3 gives the usual ~1.5x cell overhead.
constexpr std::size_t kReconHashes = 3;

/// Serialized bytes per sketch cell: count (1) + id_sum (6, ids are 48-bit
/// so their XOR never exceeds it) + check_sum (3, truncated to 24 bits —
/// false-pure odds of 2^-24 per peel are negligible at sketch scale).
constexpr std::size_t kReconCellBytes = 10;

/// Cells needed to peel-decode an expected symmetric difference of `diff`
/// short ids (same 1.5x + slack margin as the block-relay sketches).
std::size_t recon_sketch_cells(std::size_t diff);

/// Deterministic per-link salt: both endpoints of a connection derive the
/// same value regardless of which side computes it, and distinct links get
/// distinct short-id spaces so collisions cannot persist network-wide.
std::uint64_t link_salt(std::uint32_t a, std::uint32_t b, std::uint64_t network_salt);

/// Invertible Bloom Lookup Table over 48-bit short transaction ids — the
/// id-only sibling of the slice-carrying Iblt used for block relay. Each id
/// lands in kReconHashes cells; subtracting a peer's table leaves the
/// symmetric difference, recovered by peeling pure cells.
class ShortIdSketch {
 public:
  /// `cells` is clamped up to a small minimum so tiny sketches stay
  /// decodable; `salt` seeds cell placement and checksums and must match
  /// between the two sides of a subtract.
  explicit ShortIdSketch(std::size_t cells, std::uint64_t salt = 0);
  ShortIdSketch() : ShortIdSketch(0, 0) {}

  std::size_t cell_count() const { return cells_.size(); }
  std::uint64_t salt() const { return salt_; }

  void insert(std::uint64_t short_id);
  void erase(std::uint64_t short_id);

  /// this -= other. Requires identical cell count and salt.
  ShortIdSketch& subtract(const ShortIdSketch& other);

  struct Peel {
    /// True when every cell drained to zero: the lists are exactly the
    /// symmetric difference. False means the sketch was undersized and the
    /// lists are partial.
    bool complete = false;
    /// Ids present on the minuend's side only (the sketch sender's, after
    /// the receiver subtracts its own table).
    std::vector<std::uint64_t> a_only;
    /// Ids present on the subtrahend's side only (the receiver's).
    std::vector<std::uint64_t> b_only;
  };

  /// Non-destructive peel (works on a copy). Output id lists are sorted.
  Peel peel() const;

  /// True when every cell is zero.
  bool empty() const;

  /// Serialized wire size in bytes (what the latency/bandwidth model
  /// charges for the sketch portion of a MsgReconSketch).
  std::size_t wire_size() const;

  bool operator==(const ShortIdSketch&) const = default;

 private:
  struct Cell {
    std::int32_t count = 0;
    std::uint64_t id_sum = 0;
    std::uint32_t check_sum = 0;

    bool operator==(const Cell&) const = default;
  };

  std::uint32_t checksum(std::uint64_t short_id) const;
  void cell_indexes(std::uint64_t short_id, std::size_t out[kReconHashes]) const;
  void apply(std::uint64_t short_id, int direction);

  std::uint64_t salt_ = 0;
  std::vector<Cell> cells_;
};

/// Bisection halves: a part-1 sketch covers ids with even parity, part-2 odd.
/// Part 0 is the whole set.
bool id_in_part(std::uint64_t short_id, std::uint8_t part);

/// One peer's reconciliation set: the transactions this node has and has not
/// yet announced on a given link, keyed by the link-salted short id. A
/// std::map keeps iteration (and thus sketches, snapshots, and full-inv
/// fallbacks) deterministic.
class ReconSet {
 public:
  ReconSet() = default;
  explicit ReconSet(std::uint64_t salt) : salt_(salt) {}

  std::uint64_t salt() const { return salt_; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Adds `txid` under the link salt. Returns false on a short-id collision
  /// (the earlier entry wins; at 48 bits this is vanishingly rare).
  bool add(const util::Hash256& txid);
  bool remove(const util::Hash256& txid);
  void clear() { entries_.clear(); }

  const util::Hash256* find_id(std::uint64_t short_id) const;
  bool contains(const util::Hash256& txid) const;

  /// Sketch of the ids in `part` (0 = all) with `cells` cells, salted for
  /// this link.
  ShortIdSketch sketch(std::size_t cells, std::uint8_t part = 0) const;

  /// Number of entries falling in `part`.
  std::size_t part_size(std::uint8_t part) const;

  /// All txids in short-id order (the deterministic full-inv fallback).
  std::vector<util::Hash256> txids() const;

  const std::map<std::uint64_t, util::Hash256>& entries() const { return entries_; }

  /// Moves all entries out (the initiator's round snapshot), leaving the set
  /// empty for arrivals during the round.
  std::map<std::uint64_t, util::Hash256> take_snapshot();
  /// Merges a snapshot back (round aborted: timeout or disconnect).
  void restore_snapshot(std::map<std::uint64_t, util::Hash256> snapshot);

 private:
  std::uint64_t salt_ = 0;
  std::map<std::uint64_t, util::Hash256> entries_;
};

/// Responder side of one sketch exchange. Builds this set's sketch for
/// `received`'s part at `received`'s size, subtracts, and peels.
///
/// On success the set is updated in place: ids the initiator also has
/// (they cancelled in the subtract) are removed — the peer evidently knows
/// them — and the set-exclusive ids are removed and returned in `have` for
/// the caller to announce (or drop, for a passive observer like the
/// adapter). On failure nothing is touched.
struct ReconDiffResult {
  bool decode_failed = false;
  /// Ids only the initiator has (this side wants them).
  std::vector<std::uint64_t> want;
  /// (id, txid) pairs only this side has (removed from the set).
  std::vector<std::pair<std::uint64_t, util::Hash256>> have;
};
ReconDiffResult respond_to_sketch(ReconSet& set, const ShortIdSketch& received,
                                  std::uint8_t part);

// ---------------------------------------------------------------------------
// Relay policy helpers (deterministic: no RNG, only seeded hashes).

/// Selects min(fanout, peers.size()) flood targets for `txid` among `peers`:
/// peers are ranked by a salted hash of (txid, peer) so every node picks the
/// same targets for the same inputs, but different transactions spread
/// through different subsets of the topology.
std::vector<std::uint32_t> select_fanout_peers(const util::Hash256& txid,
                                               std::vector<std::uint32_t> peers,
                                               std::size_t fanout, std::uint64_t salt);

/// The next reconciliation tick strictly after `now` on a per-node staggered
/// cadence: ticks land on interval boundaries shifted by a deterministic
/// per-node phase, so a fleet of nodes does not reconcile in lockstep.
std::int64_t next_recon_tick(std::int64_t now, std::int64_t interval, std::uint32_t node_id);

}  // namespace icbtc::reconcile
