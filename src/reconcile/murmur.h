// MurmurHash3 (x86 32-bit variant): the non-cryptographic hash used to place
// IBLT slices into cells and to derive short transaction ids. Deterministic
// across platforms; not collision-resistant against adversaries holding the
// salt, which is why compact blocks carry a per-block salt (see
// compact_block.h).
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/bytes.h"

namespace icbtc::reconcile {

/// MurmurHash3_x86_32 of `data` under `seed`.
std::uint32_t murmur3_32(std::uint32_t seed, util::ByteSpan data);

}  // namespace icbtc::reconcile
