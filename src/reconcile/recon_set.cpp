#include "reconcile/recon_set.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "reconcile/murmur.h"
#include "reconcile/txslice.h"

namespace icbtc::reconcile {

namespace {

constexpr std::size_t kMinReconCells = 8;
constexpr std::uint32_t kReconChecksumSeed = 0x52656c59;  // "RelY"

std::size_t id_bytes(std::uint64_t short_id, std::uint8_t out[8]) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(short_id >> (8 * i));
  return 8;
}

}  // namespace

std::size_t recon_sketch_cells(std::size_t diff) {
  // Piecewise sizing. Small IBLTs need a 2x + constant margin (peel failure
  // at 1.5x sizing is 5-25% below ~50 cells, <1% at 2x+12), so oversizing
  // there is far cheaper than the bisection a failed decode costs. Past ~50
  // cells the peeling threshold takes over and ~1.55x + slack keeps the
  // failure rate low at ~25% fewer wire bytes than the small-diff rule; the
  // two segments join at diff 20/21 (52 -> 56 cells) so the law stays
  // monotonic.
  if (diff <= 20) return std::max(kMinReconCells, 2 * diff + 12);
  return (diff * 31) / 20 + 24;  // 1.55x + 24, integer arithmetic
}

std::uint64_t link_salt(std::uint32_t a, std::uint32_t b, std::uint64_t network_salt) {
  std::uint32_t lo = std::min(a, b);
  std::uint32_t hi = std::max(a, b);
  std::uint8_t buf[16];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<std::uint8_t>(lo >> (8 * i));
  for (int i = 0; i < 4; ++i) buf[4 + i] = static_cast<std::uint8_t>(hi >> (8 * i));
  for (int i = 0; i < 8; ++i) buf[8 + i] = static_cast<std::uint8_t>(network_salt >> (8 * i));
  std::uint64_t h0 = murmur3_32(0x6c696e6b, util::ByteSpan(buf, 16));  // "link"
  std::uint64_t h1 = murmur3_32(0x73616c74, util::ByteSpan(buf, 16));  // "salt"
  return (h0 << 32) | h1;
}

ShortIdSketch::ShortIdSketch(std::size_t cells, std::uint64_t salt)
    : salt_(salt), cells_(std::max(cells, kMinReconCells)) {}

std::uint32_t ShortIdSketch::checksum(std::uint64_t short_id) const {
  std::uint8_t buf[8];
  std::size_t n = id_bytes(short_id, buf);
  // Only 24 bits travel on the wire (kReconCellBytes); mask here so the
  // in-memory purity check agrees with what a deserialized cell would hold.
  return murmur3_32(static_cast<std::uint32_t>(salt_) ^ kReconChecksumSeed,
                    util::ByteSpan(buf, n)) &
         0xffffffu;
}

void ShortIdSketch::cell_indexes(std::uint64_t short_id, std::size_t out[kReconHashes]) const {
  std::uint8_t buf[8];
  std::size_t n = id_bytes(short_id, buf);
  std::uint32_t seed = static_cast<std::uint32_t>(salt_ >> 32);
  // Partitioned placement: each hash function owns a disjoint stripe of the
  // table, so an id always occupies kReconHashes *distinct* cells. Letting
  // the hashes share the full range would cancel an id's contribution
  // whenever two of them collided, silently degrading it to a one-hash
  // entry and wrecking the peel success rate near capacity.
  std::size_t stripe = cells_.size() / kReconHashes;
  for (std::size_t i = 0; i < kReconHashes; ++i) {
    std::size_t base = i * stripe;
    std::size_t span = (i + 1 == kReconHashes) ? cells_.size() - base : stripe;
    out[i] = base + murmur3_32(seed + static_cast<std::uint32_t>(i) * 0x9e3779b9u,
                               util::ByteSpan(buf, n)) %
                        span;
  }
}

void ShortIdSketch::apply(std::uint64_t short_id, int direction) {
  std::size_t idx[kReconHashes];
  cell_indexes(short_id, idx);
  std::uint32_t check = checksum(short_id);
  for (std::size_t i = 0; i < kReconHashes; ++i) {
    Cell& cell = cells_[idx[i]];
    cell.count += direction;
    cell.id_sum ^= short_id;
    cell.check_sum ^= check;
  }
}

void ShortIdSketch::insert(std::uint64_t short_id) { apply(short_id, +1); }

void ShortIdSketch::erase(std::uint64_t short_id) { apply(short_id, -1); }

ShortIdSketch& ShortIdSketch::subtract(const ShortIdSketch& other) {
  if (other.cells_.size() != cells_.size() || other.salt_ != salt_) {
    throw std::invalid_argument("ShortIdSketch::subtract: mismatched geometry");
  }
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    Cell& a = cells_[i];
    const Cell& b = other.cells_[i];
    a.count -= b.count;
    a.id_sum ^= b.id_sum;
    a.check_sum ^= b.check_sum;
  }
  return *this;
}

bool ShortIdSketch::empty() const {
  for (const Cell& c : cells_) {
    if (c.count != 0 || c.id_sum != 0 || c.check_sum != 0) return false;
  }
  return true;
}

ShortIdSketch::Peel ShortIdSketch::peel() const {
  ShortIdSketch work = *this;
  Peel result;

  auto pure = [&work](std::size_t n) {
    const Cell& c = work.cells_[n];
    if (c.count != 1 && c.count != -1) return false;
    return work.checksum(c.id_sum) == c.check_sum;
  };

  std::vector<std::size_t> queue;
  for (std::size_t i = 0; i < work.cells_.size(); ++i) {
    if (pure(i)) queue.push_back(i);
  }

  while (!queue.empty()) {
    std::size_t n = queue.back();
    queue.pop_back();
    if (!pure(n)) continue;  // stale entry: a previous peel changed this cell

    const Cell& c = work.cells_[n];
    std::uint64_t id = c.id_sum;
    int direction = c.count;  // +1: minuend-only, -1: subtrahend-only
    (direction > 0 ? result.a_only : result.b_only).push_back(id);

    std::size_t idx[kReconHashes];
    work.cell_indexes(id, idx);
    work.apply(id, -direction);
    for (std::size_t i = 0; i < kReconHashes; ++i) {
      if (pure(idx[i])) queue.push_back(idx[i]);
    }
  }

  result.complete = work.empty();
  std::sort(result.a_only.begin(), result.a_only.end());
  std::sort(result.b_only.begin(), result.b_only.end());
  return result;
}

std::size_t ShortIdSketch::wire_size() const {
  // Cell count prefix plus the cells. The 64-bit link salt is negotiated once
  // at connection time (both sides derive it from link_salt), so per-round
  // sketches do not resend it.
  return 4 + cells_.size() * kReconCellBytes;
}

bool id_in_part(std::uint64_t short_id, std::uint8_t part) {
  if (part == 0) return true;
  return (short_id & 1) == (part == 1 ? 0u : 1u);
}

bool ReconSet::add(const util::Hash256& txid) {
  std::uint64_t id = short_tx_id(txid, salt_);
  auto [it, inserted] = entries_.emplace(id, txid);
  (void)it;
  return inserted;
}

bool ReconSet::remove(const util::Hash256& txid) {
  return entries_.erase(short_tx_id(txid, salt_)) > 0;
}

const util::Hash256* ReconSet::find_id(std::uint64_t short_id) const {
  auto it = entries_.find(short_id);
  return it == entries_.end() ? nullptr : &it->second;
}

bool ReconSet::contains(const util::Hash256& txid) const {
  auto it = entries_.find(short_tx_id(txid, salt_));
  return it != entries_.end() && it->second == txid;
}

ShortIdSketch ReconSet::sketch(std::size_t cells, std::uint8_t part) const {
  ShortIdSketch out(cells, salt_);
  for (const auto& [id, txid] : entries_) {
    if (id_in_part(id, part)) out.insert(id);
  }
  return out;
}

std::size_t ReconSet::part_size(std::uint8_t part) const {
  if (part == 0) return entries_.size();
  std::size_t n = 0;
  for (const auto& [id, txid] : entries_) {
    if (id_in_part(id, part)) ++n;
  }
  return n;
}

std::vector<util::Hash256> ReconSet::txids() const {
  std::vector<util::Hash256> out;
  out.reserve(entries_.size());
  for (const auto& [id, txid] : entries_) out.push_back(txid);
  return out;
}

std::map<std::uint64_t, util::Hash256> ReconSet::take_snapshot() {
  return std::exchange(entries_, {});
}

void ReconSet::restore_snapshot(std::map<std::uint64_t, util::Hash256> snapshot) {
  // Arrivals during the round stay; the snapshot fills in around them.
  entries_.merge(snapshot);
}

ReconDiffResult respond_to_sketch(ReconSet& set, const ShortIdSketch& received,
                                  std::uint8_t part) {
  ShortIdSketch mine = set.sketch(received.cell_count(), part);
  // Subtracting leaves (initiator − this side) with positive counts and
  // (this side − initiator) negative.
  ShortIdSketch diff = received;
  diff.subtract(mine);
  auto peel = diff.peel();
  ReconDiffResult result;
  if (!peel.complete) {
    result.decode_failed = true;
    return result;
  }
  result.want = std::move(peel.a_only);

  // Everything of ours in this part either cancelled (the initiator has it
  // too — drop, nothing to announce) or appears in b_only (ours alone —
  // hand to the caller to announce, and drop from the set either way).
  std::vector<std::uint64_t> ours;
  for (const auto& [id, txid] : set.entries()) {
    if (id_in_part(id, part)) ours.push_back(id);
  }
  for (std::uint64_t id : ours) {
    const util::Hash256* txid = set.find_id(id);
    if (std::binary_search(peel.b_only.begin(), peel.b_only.end(), id)) {
      result.have.emplace_back(id, *txid);
    }
  }
  for (std::uint64_t id : ours) {
    const util::Hash256 txid = *set.find_id(id);
    set.remove(txid);
  }
  return result;
}

std::vector<std::uint32_t> select_fanout_peers(const util::Hash256& txid,
                                               std::vector<std::uint32_t> peers,
                                               std::size_t fanout, std::uint64_t salt) {
  if (peers.size() <= fanout) return peers;
  auto rank = [&](std::uint32_t peer) {
    return murmur3_32(static_cast<std::uint32_t>(salt) ^ peer,
                      util::ByteSpan(txid.data.data(), txid.data.size()));
  };
  std::sort(peers.begin(), peers.end(), [&](std::uint32_t a, std::uint32_t b) {
    std::uint32_t ra = rank(a), rb = rank(b);
    return ra != rb ? ra < rb : a < b;
  });
  peers.resize(fanout);
  std::sort(peers.begin(), peers.end());
  return peers;
}

std::int64_t next_recon_tick(std::int64_t now, std::int64_t interval, std::uint32_t node_id) {
  if (interval <= 0) interval = 1;
  // 32 phase slots: the fewer nodes share a slot, the fewer simultaneous
  // rounds race to push the same transaction to a common neighbour (the
  // first push lands, later rounds see it cancel in the sketch instead of
  // spending diff entries on a duplicate). The slot width still has to
  // exceed a round's sketch→diff→push latency or staggering does nothing.
  std::int64_t phase = static_cast<std::int64_t>(node_id % 32) * (interval / 32);
  // First boundary-with-phase strictly after now.
  std::int64_t k = (now - phase) / interval + 1;
  if (k * interval + phase <= now) ++k;
  std::int64_t tick = k * interval + phase;
  while (tick - interval > now && tick - interval >= phase) tick -= interval;
  return tick;
}

}  // namespace icbtc::reconcile
