#include "reconcile/compact_block.h"

#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace icbtc::reconcile {

namespace {

constexpr std::size_t kMinSketchCells = 8;

/// Folds the 64-bit block salt into the 32-bit Iblt placement salt.
std::uint32_t sketch_salt(std::uint64_t salt) {
  return static_cast<std::uint32_t>(salt) ^ static_cast<std::uint32_t>(salt >> 32);
}

}  // namespace

std::size_t sketch_cells(std::size_t diff_slices) {
  return std::max(kMinSketchCells, diff_slices + diff_slices / 2 + 4);
}

void DivergenceEstimator::observe(std::size_t diff_slices) {
  // Track recent rounds tightly: divergence is bursty, and a half-life of
  // one observation means a drained link's sketches shrink back to the floor
  // within a round or two instead of paying for a remembered burst. Decay
  // is faster than growth because the cost asymmetry differs: an oversized
  // sketch is pure waste on every subsequent round, while an undersized one
  // costs a single (capped) bisection.
  constexpr double kAlphaUp = 0.5;
  constexpr double kAlphaDown = 0.7;
  double obs = static_cast<double>(diff_slices);
  ewma_ += (obs < ewma_ ? kAlphaDown : kAlphaUp) * (obs - ewma_);
}

std::size_t DivergenceEstimator::estimate() const {
  // Mean plus ~3 sigma (Poisson-ish arrivals) so the sketch survives
  // somewhat-worse-than-average divergence without a fallback round trip.
  double est = ewma_ + 3.0 * std::sqrt(std::max(ewma_, 1.0));
  return static_cast<std::size_t>(std::ceil(est));
}

std::uint64_t CompactBlockCodec::block_salt(const util::Hash256& block_hash) {
  std::uint64_t salt = 0;
  for (int i = 7; i >= 0; --i) {
    salt = (salt << 8) | block_hash.data[static_cast<std::size_t>(i)];
  }
  return salt;
}

CompactBlock CompactBlockCodec::encode(const bitcoin::Block& block,
                                       std::size_t expected_diff_slices) {
  CompactBlock cb;
  cb.header = block.header;
  cb.salt = block_salt(block.hash());
  cb.coinbase = block.transactions.empty() ? bitcoin::Transaction{} : block.transactions[0];
  cb.sketch = Iblt(sketch_cells(expected_diff_slices), sketch_salt(cb.salt));
  cb.short_ids.reserve(block.transactions.size() > 0 ? block.transactions.size() - 1 : 0);
  for (std::size_t i = 1; i < block.transactions.size(); ++i) {
    const bitcoin::Transaction& tx = block.transactions[i];
    cb.short_ids.push_back(short_tx_id(tx.txid(), cb.salt));
    for (const TxSlice& s : slice_tx(tx, cb.salt)) cb.sketch.insert(s);
  }
  return cb;
}

CompactBlockCodec::Decode CompactBlockCodec::decode(
    const CompactBlock& cb, const std::vector<const bitcoin::Transaction*>& pool) {
  Decode out;
  out.txs.resize(cb.short_ids.size());

  // Index the pool by salted short id; ambiguous ids (pool-side collisions)
  // are unusable — the sketch or the fallback must supply those positions.
  std::unordered_map<std::uint64_t, const bitcoin::Transaction*> by_id;
  std::unordered_set<std::uint64_t> ambiguous;
  for (const bitcoin::Transaction* tx : pool) {
    std::uint64_t id = short_tx_id(tx->txid(), cb.salt);
    auto [it, inserted] = by_id.emplace(id, tx);
    if (!inserted && it->second->txid() != tx->txid()) ambiguous.insert(id);
  }
  for (std::uint64_t id : ambiguous) by_id.erase(id);

  // Duplicate ids inside the block's own list are equally unresolvable from
  // the pool (which of the two positions would the match belong to?).
  std::unordered_map<std::uint64_t, std::size_t> id_uses;
  for (std::uint64_t id : cb.short_ids) ++id_uses[id];

  // Subtract the matched part of the mempool from the sketch: what remains is
  // (block-only slices) minus (wrongly matched slices, on collisions).
  Iblt mine(cb.sketch.cell_count(), cb.sketch.salt());
  for (std::size_t i = 0; i < cb.short_ids.size(); ++i) {
    std::uint64_t id = cb.short_ids[i];
    if (id_uses[id] > 1) continue;
    auto it = by_id.find(id);
    if (it == by_id.end()) continue;
    out.txs[i] = *it->second;
    ++out.pool_hits;
    for (const TxSlice& s : slice_tx(*it->second, cb.salt)) mine.insert(s);
  }

  Iblt residual = cb.sketch;
  residual.subtract(mine);
  PeelResult peeled = residual.peel();
  out.peel_complete = peeled.complete;

  // `removed` slices are transactions we matched but the sender did not put
  // in the block: a short-id collision picked the wrong pool transaction.
  // Drop those matches; the true bytes are on the `added` side.
  std::unordered_set<std::uint64_t> mismatched;
  for (const TxSlice& s : peeled.removed) mismatched.insert(s.short_id());

  std::map<std::uint64_t, bitcoin::Transaction> recovered = reassemble_all(peeled.added);
  for (std::size_t i = 0; i < cb.short_ids.size(); ++i) {
    std::uint64_t id = cb.short_ids[i];
    if (out.txs[i].has_value() && mismatched.contains(id)) {
      out.txs[i].reset();
      --out.pool_hits;
    }
    if (!out.txs[i].has_value()) {
      auto it = recovered.find(id);
      if (it != recovered.end()) {
        out.txs[i] = it->second;
        ++out.sketch_decoded;
      }
    }
    if (!out.txs[i].has_value()) out.missing.push_back(static_cast<std::uint32_t>(i));
  }

  out.diff_slices = peeled.added.size() + peeled.removed.size();
  if (!peeled.complete) {
    // The sketch was undersized; report at least its capacity so the
    // estimator grows past it instead of converging below the truth.
    out.diff_slices = std::max(out.diff_slices, cb.sketch.cell_count());
  }
  return out;
}

bool CompactBlockCodec::fill(Decode& decode, const std::vector<bitcoin::Transaction>& txs) {
  if (txs.size() != decode.missing.size()) return false;
  for (std::size_t i = 0; i < txs.size(); ++i) {
    decode.txs[decode.missing[i]] = txs[i];
  }
  decode.missing.clear();
  return true;
}

std::optional<bitcoin::Block> CompactBlockCodec::assemble(const CompactBlock& cb,
                                                          const Decode& decode) {
  if (!decode.complete()) return std::nullopt;
  bitcoin::Block block;
  block.header = cb.header;
  block.transactions.reserve(1 + decode.txs.size());
  block.transactions.push_back(cb.coinbase);
  for (const auto& tx : decode.txs) {
    if (!tx.has_value()) return std::nullopt;
    block.transactions.push_back(*tx);
  }
  if (block.compute_merkle_root() != cb.header.merkle_root) return std::nullopt;
  return block;
}

util::Bytes CompactBlock::serialize() const {
  util::ByteWriter w;
  serialize(w);
  return std::move(w).take();
}

void CompactBlock::serialize(util::ByteWriter& w) const {
  header.serialize(w);
  w.u64le(salt);
  coinbase.serialize(w);
  w.varint(short_ids.size());
  for (std::uint64_t id : short_ids) {
    w.u32le(static_cast<std::uint32_t>(id));
    w.u16le(static_cast<std::uint16_t>(id >> 32));
  }
  sketch.serialize(w);
}

CompactBlock CompactBlock::deserialize(util::ByteReader& r) {
  CompactBlock cb;
  cb.header = bitcoin::BlockHeader::deserialize(r);
  cb.salt = r.u64le();
  cb.coinbase = bitcoin::Transaction::deserialize(r);
  std::size_t n = r.checked_len(r.varint());
  cb.short_ids.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t lo = r.u32le();
    std::uint64_t hi = r.u16le();
    cb.short_ids.push_back((hi << 32) | lo);
  }
  cb.sketch = Iblt::deserialize(r);
  return cb;
}

std::size_t CompactBlock::wire_size() const {
  util::ByteWriter w;
  w.varint(short_ids.size());
  // 80-byte header + salt + coinbase + id list + sketch.
  return 80 + 8 + coinbase.size() + w.size() + 6 * short_ids.size() + sketch.serialized_size();
}

}  // namespace icbtc::reconcile
