// Compact block relay: a block encoded as (header, coinbase, ordered short
// txids, IBLT sketch) and reconstructed against the receiver's mempool.
//
// The short-id list fixes the transaction *order* (the Merkle root binds it),
// the sketch carries the transaction *bytes* the receiver is likely missing,
// and the receiver's mempool supplies everything else. The sketch is sized by
// a divergence estimator; when it was too small the peel fails detectably and
// the receiver falls back to requesting the unresolved positions
// (getblocktxn) or, if even that cannot complete the block, the full block.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "bitcoin/block.h"
#include "reconcile/iblt.h"
#include "reconcile/txslice.h"

namespace icbtc::reconcile {

/// Wire form of a compactly relayed block. `short_ids` lists the salted
/// 48-bit ids of the non-coinbase transactions in block order; `sketch`
/// holds the slices of those same transactions.
struct CompactBlock {
  bitcoin::BlockHeader header;
  std::uint64_t salt = 0;
  bitcoin::Transaction coinbase;
  std::vector<std::uint64_t> short_ids;
  Iblt sketch;

  bool operator==(const CompactBlock&) const = default;

  util::Bytes serialize() const;
  void serialize(util::ByteWriter& w) const;
  static CompactBlock deserialize(util::ByteReader& r);
  /// Serialized size in bytes (what the latency/bandwidth model charges).
  std::size_t wire_size() const;
};

/// Cells needed to decode an expected symmetric difference of `diff_slices`
/// slices with kIbltHashes hash functions (~1.5x + slack).
std::size_t sketch_cells(std::size_t diff_slices);

/// EWMA of observed mempool divergence (in slices), with a safety margin so
/// sketches are sized for somewhat-worse-than-average blocks. Senders cannot
/// see receiver mempools, so each node feeds its *own* decode experience back
/// into the estimator it sizes outgoing sketches with.
class DivergenceEstimator {
 public:
  explicit DivergenceEstimator(double prior_slices = 16.0) : ewma_(prior_slices) {}

  void observe(std::size_t diff_slices);
  /// Smoothed divergence plus margin, in slices.
  std::size_t estimate() const;
  double mean() const { return ewma_; }

 private:
  double ewma_;
};

class CompactBlockCodec {
 public:
  /// Deterministic per-block salt (derived from the block hash): receivers
  /// can recompute it, and id collisions do not persist across blocks.
  static std::uint64_t block_salt(const util::Hash256& block_hash);

  /// Encodes `block` with a sketch sized for `expected_diff_slices`.
  static CompactBlock encode(const bitcoin::Block& block, std::size_t expected_diff_slices);

  struct Decode {
    /// One slot per entry of short_ids, filled from the pool or the sketch.
    std::vector<std::optional<bitcoin::Transaction>> txs;
    /// Indexes into short_ids that are still unresolved.
    std::vector<std::uint32_t> missing;
    /// False when the subtracted sketch did not drain (undersized sketch).
    bool peel_complete = true;
    std::size_t pool_hits = 0;
    std::size_t sketch_decoded = 0;
    /// Observed divergence in slices — feed to DivergenceEstimator::observe.
    std::size_t diff_slices = 0;

    bool complete() const { return missing.empty(); }
  };

  /// Reconstructs against `pool` (the receiver's mempool / tx caches).
  static Decode decode(const CompactBlock& cb,
                       const std::vector<const bitcoin::Transaction*>& pool);

  /// Fills unresolved slots with explicitly delivered transactions, in
  /// `missing` order (the getblocktxn fallback). Returns false if the count
  /// does not match the outstanding slots.
  static bool fill(Decode& decode, const std::vector<bitcoin::Transaction>& txs);

  /// Assembles the full block and verifies the Merkle root; nullopt when
  /// slots are unresolved or the reconstruction does not match the header
  /// (e.g. a short-id collision picked the wrong transaction).
  static std::optional<bitcoin::Block> assemble(const CompactBlock& cb, const Decode& decode);
};

}  // namespace icbtc::reconcile
