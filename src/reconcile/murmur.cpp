#include "reconcile/murmur.h"

namespace icbtc::reconcile {

namespace {

inline std::uint32_t rotl32(std::uint32_t x, int r) {
  return (x << r) | (x >> (32 - r));
}

}  // namespace

std::uint32_t murmur3_32(std::uint32_t seed, util::ByteSpan data) {
  const std::uint32_t c1 = 0xcc9e2d51;
  const std::uint32_t c2 = 0x1b873593;
  std::uint32_t h = seed;
  const std::size_t nblocks = data.size() / 4;

  for (std::size_t i = 0; i < nblocks; ++i) {
    std::uint32_t k = static_cast<std::uint32_t>(data[4 * i]) |
                      static_cast<std::uint32_t>(data[4 * i + 1]) << 8 |
                      static_cast<std::uint32_t>(data[4 * i + 2]) << 16 |
                      static_cast<std::uint32_t>(data[4 * i + 3]) << 24;
    k *= c1;
    k = rotl32(k, 15);
    k *= c2;
    h ^= k;
    h = rotl32(h, 13);
    h = h * 5 + 0xe6546b64;
  }

  std::uint32_t k = 0;
  switch (data.size() & 3) {
    case 3:
      k ^= static_cast<std::uint32_t>(data[4 * nblocks + 2]) << 16;
      [[fallthrough]];
    case 2:
      k ^= static_cast<std::uint32_t>(data[4 * nblocks + 1]) << 8;
      [[fallthrough]];
    case 1:
      k ^= static_cast<std::uint32_t>(data[4 * nblocks]);
      k *= c1;
      k = rotl32(k, 15);
      k *= c2;
      h ^= k;
  }

  h ^= static_cast<std::uint32_t>(data.size());
  h ^= h >> 16;
  h *= 0x85ebca6b;
  h ^= h >> 13;
  h *= 0xc2b2ae35;
  h ^= h >> 16;
  return h;
}

}  // namespace icbtc::reconcile
