#include "bitcoin/transaction.h"

#include <unordered_set>
#include <utility>

#include "crypto/sha256.h"

namespace icbtc::bitcoin {

namespace {
std::atomic<std::uint64_t> g_txid_computations{0};
std::atomic<bool> g_txid_cache_enabled{true};
}  // namespace

void OutPoint::serialize(util::ByteWriter& w) const {
  w.bytes(txid.span());
  w.u32le(vout);
}

OutPoint OutPoint::deserialize(util::ByteReader& r) {
  OutPoint o;
  o.txid = r.hash256();
  o.vout = r.u32le();
  return o;
}

void TxIn::serialize(util::ByteWriter& w) const {
  prevout.serialize(w);
  w.var_bytes(script_sig);
  w.u32le(sequence);
}

TxIn TxIn::deserialize(util::ByteReader& r) {
  TxIn in;
  in.prevout = OutPoint::deserialize(r);
  in.script_sig = r.var_bytes();
  in.sequence = r.u32le();
  return in;
}

void TxOut::serialize(util::ByteWriter& w) const {
  w.i64le(value);
  w.var_bytes(script_pubkey);
}

TxOut TxOut::deserialize(util::ByteReader& r) {
  TxOut out;
  out.value = r.i64le();
  out.script_pubkey = r.var_bytes();
  return out;
}

void Transaction::serialize(util::ByteWriter& w) const {
  w.i32le(version);
  w.varint(inputs.size());
  for (const auto& in : inputs) in.serialize(w);
  w.varint(outputs.size());
  for (const auto& out : outputs) out.serialize(w);
  w.u32le(lock_time);
}

Bytes Transaction::serialize() const {
  util::ByteWriter w;
  serialize(w);
  return std::move(w).take();
}

Transaction Transaction::deserialize(util::ByteReader& r) {
  std::size_t start = r.position();
  Transaction tx;
  tx.version = r.i32le();
  std::size_t n_in = r.checked_len(r.varint());
  tx.inputs.reserve(n_in);
  for (std::size_t i = 0; i < n_in; ++i) tx.inputs.push_back(TxIn::deserialize(r));
  std::size_t n_out = r.checked_len(r.varint());
  tx.outputs.reserve(n_out);
  for (std::size_t i = 0; i < n_out; ++i) tx.outputs.push_back(TxOut::deserialize(r));
  tx.lock_time = r.u32le();
  if (g_txid_cache_enabled.load(std::memory_order_relaxed)) {
    // Hash the exact wire bytes just consumed — the txid comes for free at
    // parse time, with no reserialization.
    g_txid_computations.fetch_add(1, std::memory_order_relaxed);
    tx.seed_txid(crypto::sha256d(r.window(start)));
  }
  return tx;
}

Transaction Transaction::parse(ByteSpan data) {
  util::ByteReader r(data);
  Transaction tx = deserialize(r);
  if (!r.done()) throw util::DecodeError("trailing bytes after transaction");
  return tx;
}

Transaction::Transaction(const Transaction& other)
    : version(other.version),
      inputs(other.inputs),
      outputs(other.outputs),
      lock_time(other.lock_time) {
  adopt_cache(other);
}

Transaction::Transaction(Transaction&& other) noexcept
    : version(other.version),
      inputs(std::move(other.inputs)),
      outputs(std::move(other.outputs)),
      lock_time(other.lock_time) {
  adopt_cache(other);
  other.invalidate_txid();
}

Transaction& Transaction::operator=(const Transaction& other) {
  if (this != &other) {
    version = other.version;
    inputs = other.inputs;
    outputs = other.outputs;
    lock_time = other.lock_time;
    adopt_cache(other);
  }
  return *this;
}

Transaction& Transaction::operator=(Transaction&& other) noexcept {
  if (this != &other) {
    version = other.version;
    inputs = std::move(other.inputs);
    outputs = std::move(other.outputs);
    lock_time = other.lock_time;
    adopt_cache(other);
    other.invalidate_txid();
  }
  return *this;
}

void Transaction::adopt_cache(const Transaction& other) {
  if (other.txid_state_.load(std::memory_order_acquire) == kTxidReady) {
    txid_cache_ = other.txid_cache_;
    txid_state_.store(kTxidReady, std::memory_order_release);
  } else {
    txid_state_.store(kTxidEmpty, std::memory_order_relaxed);
  }
}

void Transaction::seed_txid(const Hash256& h) const {
  std::uint8_t expected = kTxidEmpty;
  if (txid_state_.compare_exchange_strong(expected, kTxidFilling, std::memory_order_acq_rel)) {
    txid_cache_ = h;
    txid_state_.store(kTxidReady, std::memory_order_release);
  }
}

Hash256 Transaction::txid() const {
  if (g_txid_cache_enabled.load(std::memory_order_relaxed) &&
      txid_state_.load(std::memory_order_acquire) == kTxidReady) {
    return txid_cache_;
  }
  g_txid_computations.fetch_add(1, std::memory_order_relaxed);
  Hash256 h = crypto::sha256d(serialize());
  if (g_txid_cache_enabled.load(std::memory_order_relaxed)) seed_txid(h);
  return h;
}

std::uint64_t Transaction::txid_computations() {
  return g_txid_computations.load(std::memory_order_relaxed);
}

void Transaction::set_txid_cache_enabled(bool enabled) {
  g_txid_cache_enabled.store(enabled, std::memory_order_relaxed);
}

bool Transaction::txid_cache_enabled() {
  return g_txid_cache_enabled.load(std::memory_order_relaxed);
}

bool Transaction::is_well_formed() const {
  if (inputs.empty() || outputs.empty()) return false;
  Amount total = 0;
  for (const auto& out : outputs) {
    if (!money_range(out.value)) return false;
    total += out.value;
    if (!money_range(total)) return false;
  }
  std::unordered_set<OutPoint> seen;
  for (const auto& in : inputs) {
    if (!is_coinbase() && in.prevout.is_null()) return false;
    if (!seen.insert(in.prevout).second) return false;
  }
  return true;
}

}  // namespace icbtc::bitcoin
