#include "bitcoin/transaction.h"

#include <unordered_set>

#include "crypto/sha256.h"

namespace icbtc::bitcoin {

void OutPoint::serialize(util::ByteWriter& w) const {
  w.bytes(txid.span());
  w.u32le(vout);
}

OutPoint OutPoint::deserialize(util::ByteReader& r) {
  OutPoint o;
  o.txid = r.hash256();
  o.vout = r.u32le();
  return o;
}

void TxIn::serialize(util::ByteWriter& w) const {
  prevout.serialize(w);
  w.var_bytes(script_sig);
  w.u32le(sequence);
}

TxIn TxIn::deserialize(util::ByteReader& r) {
  TxIn in;
  in.prevout = OutPoint::deserialize(r);
  in.script_sig = r.var_bytes();
  in.sequence = r.u32le();
  return in;
}

void TxOut::serialize(util::ByteWriter& w) const {
  w.i64le(value);
  w.var_bytes(script_pubkey);
}

TxOut TxOut::deserialize(util::ByteReader& r) {
  TxOut out;
  out.value = r.i64le();
  out.script_pubkey = r.var_bytes();
  return out;
}

void Transaction::serialize(util::ByteWriter& w) const {
  w.i32le(version);
  w.varint(inputs.size());
  for (const auto& in : inputs) in.serialize(w);
  w.varint(outputs.size());
  for (const auto& out : outputs) out.serialize(w);
  w.u32le(lock_time);
}

Bytes Transaction::serialize() const {
  util::ByteWriter w;
  serialize(w);
  return std::move(w).take();
}

Transaction Transaction::deserialize(util::ByteReader& r) {
  Transaction tx;
  tx.version = r.i32le();
  std::size_t n_in = r.checked_len(r.varint());
  tx.inputs.reserve(n_in);
  for (std::size_t i = 0; i < n_in; ++i) tx.inputs.push_back(TxIn::deserialize(r));
  std::size_t n_out = r.checked_len(r.varint());
  tx.outputs.reserve(n_out);
  for (std::size_t i = 0; i < n_out; ++i) tx.outputs.push_back(TxOut::deserialize(r));
  tx.lock_time = r.u32le();
  return tx;
}

Transaction Transaction::parse(ByteSpan data) {
  util::ByteReader r(data);
  Transaction tx = deserialize(r);
  if (!r.done()) throw util::DecodeError("trailing bytes after transaction");
  return tx;
}

Hash256 Transaction::txid() const { return crypto::sha256d(serialize()); }

bool Transaction::is_well_formed() const {
  if (inputs.empty() || outputs.empty()) return false;
  Amount total = 0;
  for (const auto& out : outputs) {
    if (!money_range(out.value)) return false;
    total += out.value;
    if (!money_range(total)) return false;
  }
  std::unordered_set<OutPoint> seen;
  for (const auto& in : inputs) {
    if (!is_coinbase() && in.prevout.is_null()) return false;
    if (!seen.insert(in.prevout).second) return false;
  }
  return true;
}

}  // namespace icbtc::bitcoin
