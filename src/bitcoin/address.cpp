#include "bitcoin/address.h"

#include <algorithm>
#include <cstring>

#include "bitcoin/script.h"
#include "crypto/sha256.h"

namespace icbtc::bitcoin {

namespace {
constexpr char kBase58Alphabet[] = "123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz";

int base58_index(char c) {
  const char* p = std::strchr(kBase58Alphabet, c);
  if (p == nullptr || c == '\0') return -1;
  return static_cast<int>(p - kBase58Alphabet);
}

std::uint8_t version_byte(Network network) {
  switch (network) {
    case Network::kMainnet: return 0x00;
    case Network::kTestnet: return 0x6f;
    case Network::kRegtest: return 0x6f;
  }
  return 0x00;
}

std::string bech32_hrp(Network network) {
  switch (network) {
    case Network::kMainnet: return "bc";
    case Network::kTestnet: return "tb";
    case Network::kRegtest: return "bcrt";
  }
  return "bc";
}
}  // namespace

std::string base58_encode(util::ByteSpan data) {
  // Count leading zero bytes; they map to '1'.
  std::size_t zeros = 0;
  while (zeros < data.size() && data[zeros] == 0) ++zeros;

  // Repeated division by 58 on a big-endian byte buffer.
  std::vector<std::uint8_t> digits;  // base58 digits, least significant first
  std::vector<std::uint8_t> num(data.begin() + static_cast<std::ptrdiff_t>(zeros), data.end());
  while (!num.empty()) {
    std::uint32_t remainder = 0;
    std::vector<std::uint8_t> next;
    next.reserve(num.size());
    for (auto byte : num) {
      std::uint32_t acc = (remainder << 8) | byte;
      std::uint8_t q = static_cast<std::uint8_t>(acc / 58);
      remainder = acc % 58;
      if (!next.empty() || q != 0) next.push_back(q);
    }
    digits.push_back(static_cast<std::uint8_t>(remainder));
    num = std::move(next);
  }

  std::string out(zeros, '1');
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) out.push_back(kBase58Alphabet[*it]);
  return out;
}

std::optional<util::Bytes> base58_decode(std::string_view s) {
  std::size_t ones = 0;
  while (ones < s.size() && s[ones] == '1') ++ones;

  std::vector<std::uint8_t> num;  // big-endian base-256
  for (std::size_t i = ones; i < s.size(); ++i) {
    int digit = base58_index(s[i]);
    if (digit < 0) return std::nullopt;
    // num = num * 58 + digit.
    std::uint32_t carry = static_cast<std::uint32_t>(digit);
    for (auto it = num.rbegin(); it != num.rend(); ++it) {
      std::uint32_t acc = static_cast<std::uint32_t>(*it) * 58 + carry;
      *it = static_cast<std::uint8_t>(acc);
      carry = acc >> 8;
    }
    while (carry) {
      num.insert(num.begin(), static_cast<std::uint8_t>(carry));
      carry >>= 8;
    }
  }
  util::Bytes out(ones, 0);
  out.insert(out.end(), num.begin(), num.end());
  return out;
}

std::string base58check_encode(std::uint8_t version, util::ByteSpan payload) {
  util::Bytes data;
  data.reserve(payload.size() + 5);
  data.push_back(version);
  util::append(data, payload);
  auto checksum = crypto::sha256d(data);
  data.insert(data.end(), checksum.data.begin(), checksum.data.begin() + 4);
  return base58_encode(data);
}

std::optional<std::pair<std::uint8_t, util::Bytes>> base58check_decode(std::string_view s) {
  auto decoded = base58_decode(s);
  if (!decoded || decoded->size() < 5) return std::nullopt;
  util::ByteSpan body(decoded->data(), decoded->size() - 4);
  auto checksum = crypto::sha256d(body);
  if (!std::equal(checksum.data.begin(), checksum.data.begin() + 4,
                  decoded->end() - 4)) {
    return std::nullopt;
  }
  util::Bytes payload(decoded->begin() + 1, decoded->end() - 4);
  return std::make_pair((*decoded)[0], std::move(payload));
}

// ---------------------------------------------------------------------------
// Bech32 (BIP-173).
namespace {
constexpr char kBech32Charset[] = "qpzry9x8gf2tvdw0s3jn54khce6mua7l";

std::uint32_t bech32_polymod(const std::vector<std::uint8_t>& values) {
  static constexpr std::uint32_t kGen[5] = {0x3b6a57b2, 0x26508e6d, 0x1ea119fa, 0x3d4233dd,
                                            0x2a1462b3};
  std::uint32_t chk = 1;
  for (auto v : values) {
    std::uint8_t top = static_cast<std::uint8_t>(chk >> 25);
    chk = (chk & 0x1ffffff) << 5 ^ v;
    for (int i = 0; i < 5; ++i) {
      if ((top >> i) & 1) chk ^= kGen[i];
    }
  }
  return chk;
}

std::vector<std::uint8_t> bech32_hrp_expand(const std::string& hrp) {
  std::vector<std::uint8_t> out;
  out.reserve(hrp.size() * 2 + 1);
  for (char c : hrp) out.push_back(static_cast<std::uint8_t>(c) >> 5);
  out.push_back(0);
  for (char c : hrp) out.push_back(static_cast<std::uint8_t>(c) & 31);
  return out;
}

// Converts between bit group sizes; returns nullopt on invalid padding.
std::optional<std::vector<std::uint8_t>> convert_bits(util::ByteSpan data, int from, int to,
                                                      bool pad) {
  std::uint32_t acc = 0;
  int bits = 0;
  std::vector<std::uint8_t> out;
  const std::uint32_t maxv = (1u << to) - 1;
  for (auto b : data) {
    acc = (acc << from) | b;
    bits += from;
    while (bits >= to) {
      bits -= to;
      out.push_back(static_cast<std::uint8_t>((acc >> bits) & maxv));
    }
  }
  if (pad) {
    if (bits > 0) out.push_back(static_cast<std::uint8_t>((acc << (to - bits)) & maxv));
  } else if (bits >= from || ((acc << (to - bits)) & maxv)) {
    return std::nullopt;
  }
  return out;
}
}  // namespace

namespace {
// Bech32 (BIP-173) for witness v0; Bech32m (BIP-350) for v1+.
constexpr std::uint32_t kBech32Checksum = 1;
constexpr std::uint32_t kBech32mChecksum = 0x2bc830a3;
}  // namespace

std::string segwit_encode(const std::string& hrp, int witness_version, util::ByteSpan program) {
  if (witness_version < 0 || witness_version > 16) {
    throw std::invalid_argument("segwit_encode: bad witness version");
  }
  auto data5 = convert_bits(program, 8, 5, true);
  std::vector<std::uint8_t> values;
  values.push_back(static_cast<std::uint8_t>(witness_version));
  values.insert(values.end(), data5->begin(), data5->end());

  std::uint32_t checksum_const = witness_version == 0 ? kBech32Checksum : kBech32mChecksum;
  auto checksummed = bech32_hrp_expand(hrp);
  checksummed.insert(checksummed.end(), values.begin(), values.end());
  checksummed.insert(checksummed.end(), 6, 0);
  std::uint32_t polymod = bech32_polymod(checksummed) ^ checksum_const;

  std::string out = hrp + '1';
  for (auto v : values) out.push_back(kBech32Charset[v]);
  for (int i = 0; i < 6; ++i) out.push_back(kBech32Charset[(polymod >> (5 * (5 - i))) & 31]);
  return out;
}

std::optional<std::pair<int, util::Bytes>> segwit_decode(const std::string& hrp,
                                                         const std::string& addr) {
  auto sep = addr.rfind('1');
  if (sep == std::string::npos || sep != hrp.size() || addr.compare(0, sep, hrp) != 0) {
    return std::nullopt;
  }
  if (addr.size() < sep + 8) return std::nullopt;
  std::vector<std::uint8_t> values;
  values.reserve(addr.size() - sep - 1);
  for (std::size_t i = sep + 1; i < addr.size(); ++i) {
    const char* p = std::strchr(kBech32Charset, addr[i]);
    if (p == nullptr || addr[i] == '\0') return std::nullopt;
    values.push_back(static_cast<std::uint8_t>(p - kBech32Charset));
  }
  int witness_version = values[0];
  if (witness_version > 16) return std::nullopt;
  std::uint32_t expected = witness_version == 0 ? kBech32Checksum : kBech32mChecksum;
  auto check = bech32_hrp_expand(hrp);
  check.insert(check.end(), values.begin(), values.end());
  if (bech32_polymod(check) != expected) return std::nullopt;

  util::ByteSpan data5(values.data() + 1, values.size() - 1 - 6);
  auto program = convert_bits(data5, 5, 8, false);
  if (!program || program->size() < 2 || program->size() > 40) return std::nullopt;
  if (witness_version == 0 && program->size() != 20 && program->size() != 32) {
    return std::nullopt;
  }
  if (witness_version == 1 && program->size() != 32) return std::nullopt;
  return std::make_pair(witness_version, util::Bytes(program->begin(), program->end()));
}

std::string bech32_encode(const std::string& hrp, util::ByteSpan program) {
  return segwit_encode(hrp, 0, program);
}

std::optional<util::Bytes> bech32_decode(const std::string& hrp, const std::string& addr) {
  auto decoded = segwit_decode(hrp, addr);
  if (!decoded || decoded->first != 0) return std::nullopt;
  return decoded->second;
}

std::string p2pkh_address(const util::Hash160& pubkey_hash, Network network) {
  return base58check_encode(version_byte(network), pubkey_hash.span());
}

std::string p2wpkh_address(const util::Hash160& pubkey_hash, Network network) {
  return bech32_encode(bech32_hrp(network), pubkey_hash.span());
}

std::string p2tr_address(const util::FixedBytes<32>& output_key, Network network) {
  return segwit_encode(bech32_hrp(network), 1, output_key.span());
}

std::optional<DecodedAddress> decode_address(const std::string& addr, Network network) {
  if (auto b58 = base58check_decode(addr)) {
    if (b58->first != version_byte(network) || b58->second.size() != 20) return std::nullopt;
    return DecodedAddress{AddressType::kP2pkh, b58->second};
  }
  if (auto decoded = segwit_decode(bech32_hrp(network), addr)) {
    auto& [witness_version, program] = *decoded;
    if (witness_version == 0 && program.size() == 20) {
      return DecodedAddress{AddressType::kP2wpkh, program};
    }
    if (witness_version == 1 && program.size() == 32) {
      return DecodedAddress{AddressType::kP2tr, program};
    }
  }
  return std::nullopt;
}

util::Bytes script_for_address(const DecodedAddress& addr) {
  switch (addr.type) {
    case AddressType::kP2pkh: return p2pkh_script(addr.hash160());
    case AddressType::kP2wpkh: return p2wpkh_script(addr.hash160());
    case AddressType::kP2tr:
      return p2tr_script(util::FixedBytes<32>::from_span(addr.program));
  }
  return {};
}

}  // namespace icbtc::bitcoin
