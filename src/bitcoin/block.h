// Bitcoin block headers and blocks.
#pragma once

#include <cstdint>
#include <vector>

#include "bitcoin/transaction.h"
#include "parallel/thread_pool.h"
#include "util/byteio.h"
#include "util/bytes.h"

namespace icbtc::bitcoin {

/// The 80-byte Bitcoin block header.
struct BlockHeader {
  std::int32_t version = 4;
  Hash256 prev_hash;    // hashPrevBlock
  Hash256 merkle_root;  // root of the txid Merkle tree
  std::uint32_t time = 0;
  std::uint32_t bits = 0;  // compact difficulty target
  std::uint32_t nonce = 0;

  bool operator==(const BlockHeader&) const = default;

  void serialize(util::ByteWriter& w) const;
  static BlockHeader deserialize(util::ByteReader& r);
  Bytes serialize() const;
  static BlockHeader parse(ByteSpan data);

  /// The block hash: double-SHA256 of the 80-byte serialization.
  Hash256 hash() const;
};

struct Block {
  BlockHeader header;
  std::vector<Transaction> transactions;

  bool operator==(const Block&) const = default;

  void serialize(util::ByteWriter& w) const;
  static Block deserialize(util::ByteReader& r);
  Bytes serialize() const;
  static Block parse(ByteSpan data);

  Hash256 hash() const { return header.hash(); }
  std::size_t size() const { return serialize().size(); }

  /// All txids in transaction order. When `pool` is non-null, uncached txids
  /// are computed concurrently (txid is a pure function of the tx bytes, so
  /// the result is identical to the serial path); each tx's cache is seeded
  /// so later consumers hash nothing.
  std::vector<Hash256> txids(parallel::ThreadPool* pool = parallel::shared_pool()) const;

  /// Recomputes the Merkle root from the transactions.
  Hash256 compute_merkle_root(parallel::ThreadPool* pool = parallel::shared_pool()) const;

  /// Structural validity: non-empty, first tx (and only first) is coinbase,
  /// all transactions well-formed, and the header's Merkle root matches.
  bool is_well_formed(parallel::ThreadPool* pool = parallel::shared_pool()) const;
};

/// Merkle root over a list of txids, per Bitcoin's (duplicate-last) rule.
/// An empty list yields the zero hash.
Hash256 merkle_root(const std::vector<Hash256>& txids);

}  // namespace icbtc::bitcoin
