// Proof-of-work target arithmetic: compact "bits" encoding, per-block work
// w(b), PoW checks, and the difficulty retargeting rule.
#pragma once

#include <cstdint>
#include <optional>

#include "crypto/u256.h"
#include "util/bytes.h"

namespace icbtc::bitcoin {

using crypto::U256;

/// Expands the compact "bits" representation to a 256-bit target. Returns
/// nullopt for negative or overflowing encodings (which Bitcoin rejects).
std::optional<U256> compact_to_target(std::uint32_t bits);

/// Compresses a target to compact form (the canonical encoding Bitcoin uses).
std::uint32_t target_to_compact(const U256& target);

/// The expected number of hashes to find a block at `target`, i.e.
/// 2^256 / (target + 1) — Bitcoin Core's GetBlockProof. This is the cost
/// function behind the paper's difficulty-based depth d_w.
U256 work_from_target(const U256& target);

/// Work from a compact-bits encoding; zero for invalid encodings.
U256 work_from_bits(std::uint32_t bits);

/// True if `hash` (interpreted as a little-endian 256-bit number, Bitcoin's
/// convention) meets the target implied by `bits`, and the target does not
/// exceed `pow_limit`.
bool check_proof_of_work(const util::Hash256& hash, std::uint32_t bits, const U256& pow_limit);

/// Difficulty retarget: given the target of the previous period and the
/// actual timespan of the last 2016 blocks, computes the next target, with
/// Bitcoin's 4x clamping and the pow_limit cap.
std::uint32_t next_target(std::uint32_t prev_bits, std::int64_t actual_timespan_s,
                          std::int64_t target_timespan_s, const U256& pow_limit);

/// Converts a Bitcoin hash (internal little-endian order) to a U256 for
/// numeric comparison against a target.
U256 hash_to_u256(const util::Hash256& hash);

}  // namespace icbtc::bitcoin
