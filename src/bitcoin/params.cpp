#include "bitcoin/params.h"

#include "bitcoin/pow.h"
#include "bitcoin/script.h"

namespace icbtc::bitcoin {

namespace {

// All simulated networks use a grindable proof-of-work limit (regtest's
// 0x207fffff). The paper's difficulty-based stability is defined *relative*
// to a reference block's work (d_w(b)/w(b*), §II-C), so scaling absolute
// difficulty down preserves every result; see DESIGN.md.
const crypto::U256& sim_pow_limit() {
  static const crypto::U256 limit = *compact_to_target(0x207fffff);
  return limit;
}

Transaction genesis_coinbase(const std::string& tag) {
  Transaction tx;
  tx.version = 1;
  TxIn in;
  in.prevout = OutPoint::null();
  in.script_sig = Bytes(tag.begin(), tag.end());
  tx.inputs.push_back(std::move(in));
  TxOut out;
  out.value = 50 * kCoin;
  const std::string note = "icbtc genesis";
  out.script_pubkey =
      op_return_script(ByteSpan(reinterpret_cast<const std::uint8_t*>(note.data()), note.size()));
  tx.outputs.push_back(std::move(out));
  return tx;
}

BlockHeader make_genesis_header(const std::string& tag, std::uint32_t time) {
  BlockHeader h;
  h.version = 1;
  h.prev_hash = Hash256{};
  h.merkle_root = genesis_coinbase(tag).txid();
  h.time = time;
  h.bits = 0x207fffff;
  h.nonce = 0;  // genesis is trusted by hash, not by proof of work
  return h;
}

ChainParams make_params(Network network) {
  ChainParams p;
  p.network = network;
  p.pow_limit = sim_pow_limit();
  p.pow_limit_bits = 0x207fffff;
  p.target_spacing_s = 600;
  switch (network) {
    case Network::kMainnet:
      p.retarget_interval = 2016;
      // Difficulty is held constant in the simulation: the canister's header
      // tree is rooted at the anchor, so it cannot see a full retarget window,
      // and the paper's stability math only depends on *relative* work
      // (d_w(b)/w(b*)). The retarget rule itself is implemented and unit
      // tested in bitcoin/pow.cc.
      p.retargeting_enabled = false;
      p.addr_lower_threshold = 500;
      p.addr_upper_threshold = 2000;
      p.outbound_connections = 5;
      p.stability_delta = 144;
      p.genesis_header = make_genesis_header("icbtc-mainnet", 1231006505);
      break;
    case Network::kTestnet:
      p.retarget_interval = 2016;
      p.retargeting_enabled = false;  // see the mainnet comment
      p.addr_lower_threshold = 100;
      p.addr_upper_threshold = 1000;
      p.outbound_connections = 5;
      p.stability_delta = 144;
      p.genesis_header = make_genesis_header("icbtc-testnet", 1296688602);
      break;
    case Network::kRegtest:
      p.retarget_interval = 2016;
      p.retargeting_enabled = false;
      p.addr_lower_threshold = 1;
      p.addr_upper_threshold = 1;
      p.outbound_connections = 1;
      p.stability_delta = 6;  // small δ keeps local tests fast, as in practice
      p.genesis_header = make_genesis_header("icbtc-regtest", 1296688602);
      break;
  }
  p.sync_slack = 2;
  return p;
}

}  // namespace

Block genesis_block(const ChainParams& params) {
  std::string tag;
  switch (params.network) {
    case Network::kMainnet: tag = "icbtc-mainnet"; break;
    case Network::kTestnet: tag = "icbtc-testnet"; break;
    case Network::kRegtest: tag = "icbtc-regtest"; break;
  }
  Block b;
  b.header = params.genesis_header;
  b.transactions.push_back(genesis_coinbase(tag));
  return b;
}

const ChainParams& ChainParams::mainnet() {
  static const ChainParams p = make_params(Network::kMainnet);
  return p;
}

const ChainParams& ChainParams::testnet() {
  static const ChainParams p = make_params(Network::kTestnet);
  return p;
}

const ChainParams& ChainParams::regtest() {
  static const ChainParams p = make_params(Network::kRegtest);
  return p;
}

const ChainParams& ChainParams::for_network(Network network) {
  switch (network) {
    case Network::kMainnet: return mainnet();
    case Network::kTestnet: return testnet();
    case Network::kRegtest: return regtest();
  }
  return regtest();
}

}  // namespace icbtc::bitcoin
