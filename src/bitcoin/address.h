// Bitcoin address encoding: Base58Check (P2PKH) and Bech32 (P2WPKH).
#pragma once

#include <optional>
#include <string>

#include "util/bytes.h"

namespace icbtc::bitcoin {

enum class Network { kMainnet, kTestnet, kRegtest };

/// Base58 (no checksum) encode/decode.
std::string base58_encode(util::ByteSpan data);
std::optional<util::Bytes> base58_decode(std::string_view s);

/// Base58Check: version byte(s) + payload + 4-byte double-SHA256 checksum.
std::string base58check_encode(std::uint8_t version, util::ByteSpan payload);
/// Returns (version, payload) or nullopt on bad checksum/format.
std::optional<std::pair<std::uint8_t, util::Bytes>> base58check_decode(std::string_view s);

/// Bech32 (BIP-173) encoding of a segwit v0 program.
std::string bech32_encode(const std::string& hrp, util::ByteSpan program_20_or_32);
/// Decodes a bech32 segwit v0 address; returns the witness program.
std::optional<util::Bytes> bech32_decode(const std::string& hrp, const std::string& addr);

/// General segwit address coding: Bech32 for witness v0, Bech32m (BIP-350)
/// for v1+ (taproot).
std::string segwit_encode(const std::string& hrp, int witness_version, util::ByteSpan program);
/// Returns (witness_version, program) or nullopt.
std::optional<std::pair<int, util::Bytes>> segwit_decode(const std::string& hrp,
                                                         const std::string& addr);

/// Address payload kinds this library produces/understands.
enum class AddressType { kP2pkh, kP2wpkh, kP2tr };

struct DecodedAddress {
  AddressType type;
  /// 20 bytes for P2PKH/P2WPKH (the pubkey hash) or 32 bytes for P2TR (the
  /// x-only output key).
  util::Bytes program;

  util::Hash160 hash160() const { return util::Hash160::from_span(program); }
};

/// Encodes a pubkey hash as a P2PKH base58 address for `network`.
std::string p2pkh_address(const util::Hash160& pubkey_hash, Network network);

/// Encodes a pubkey hash as a P2WPKH bech32 address for `network`.
std::string p2wpkh_address(const util::Hash160& pubkey_hash, Network network);

/// Encodes an x-only output key as a P2TR bech32m address for `network`.
std::string p2tr_address(const util::FixedBytes<32>& output_key, Network network);

/// Parses either address form; nullopt if malformed or for another network.
std::optional<DecodedAddress> decode_address(const std::string& addr, Network network);

/// The scriptPubKey an address pays to.
util::Bytes script_for_address(const DecodedAddress& addr);

}  // namespace icbtc::bitcoin
