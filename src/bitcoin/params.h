// Per-network consensus and policy parameters, mirroring the configuration
// the Bitcoin adapter and canister use for mainnet / testnet / regtest
// (§III-B of the paper).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bitcoin/address.h"
#include "bitcoin/block.h"
#include "crypto/u256.h"

namespace icbtc::bitcoin {

struct ChainParams {
  Network network = Network::kRegtest;

  // Consensus.
  crypto::U256 pow_limit;               // easiest allowed target
  std::uint32_t pow_limit_bits = 0;     // compact form of pow_limit
  std::int64_t target_spacing_s = 600;  // expected seconds between blocks
  int retarget_interval = 2016;         // blocks per difficulty adjustment
  bool retargeting_enabled = true;

  // Block timestamp rules.
  int median_time_span = 11;              // blocks in the median-time-past window
  std::int64_t max_future_drift_s = 2 * 60 * 60;

  // Adapter address-discovery thresholds (t_l / t_u from §III-B).
  std::size_t addr_lower_threshold = 500;
  std::size_t addr_upper_threshold = 2000;
  /// Outbound connections per adapter (ℓ).
  std::size_t outbound_connections = 5;

  // Canister stability parameters (§III-C).
  int stability_delta = 144;  // δ: difficulty-based stability threshold
  int sync_slack = 2;         // τ: max height lead of headers over blocks

  BlockHeader genesis_header;

  static const ChainParams& mainnet();
  static const ChainParams& testnet();
  static const ChainParams& regtest();
  static const ChainParams& for_network(Network network);
};

/// The full genesis block (header + coinbase) for a network.
Block genesis_block(const ChainParams& params);

}  // namespace icbtc::bitcoin
