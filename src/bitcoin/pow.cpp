#include "bitcoin/pow.h"

namespace icbtc::bitcoin {

std::optional<U256> compact_to_target(std::uint32_t bits) {
  int exponent = static_cast<int>(bits >> 24);
  std::uint32_t mantissa = bits & 0x007fffff;
  if (bits & 0x00800000) return std::nullopt;  // negative
  U256 target;
  if (exponent <= 3) {
    target = U256(mantissa >> (8 * (3 - exponent)));
  } else {
    target = U256(mantissa).shifted_left(static_cast<unsigned>(8 * (exponent - 3)));
    // Overflow check: shifting back must recover the mantissa.
    if (mantissa != 0 &&
        target.shifted_right(static_cast<unsigned>(8 * (exponent - 3))) != U256(mantissa)) {
      return std::nullopt;
    }
  }
  return target;
}

std::uint32_t target_to_compact(const U256& target) {
  int bits = target.bit_length();
  int size = (bits + 7) / 8;
  std::uint32_t compact;
  if (size <= 3) {
    compact = static_cast<std::uint32_t>(target.limb[0] << (8 * (3 - size)));
  } else {
    compact = static_cast<std::uint32_t>(
        target.shifted_right(static_cast<unsigned>(8 * (size - 3))).limb[0]);
  }
  // The mantissa must not look negative; borrow an exponent step if it does.
  if (compact & 0x00800000) {
    compact >>= 8;
    ++size;
  }
  return compact | (static_cast<std::uint32_t>(size) << 24);
}

U256 work_from_target(const U256& target) {
  // 2^256 / (target+1) == (~target / (target+1)) + 1, avoiding 257-bit math.
  U256 max = U256(0) - U256(1);  // 2^256 - 1 (wrapping)
  U256 neg_target = max - target;
  return crypto::udiv(neg_target, target + U256(1)) + U256(1);
}

U256 work_from_bits(std::uint32_t bits) {
  auto target = compact_to_target(bits);
  if (!target || target->is_zero()) return U256(0);
  return work_from_target(*target);
}

U256 hash_to_u256(const util::Hash256& hash) {
  // The hash bytes are little-endian as a number.
  U256 v;
  for (int i = 0; i < 4; ++i) {
    std::uint64_t limb = 0;
    for (int j = 7; j >= 0; --j) limb = (limb << 8) | hash.data[static_cast<std::size_t>(i * 8 + j)];
    v.limb[static_cast<std::size_t>(i)] = limb;
  }
  return v;
}

bool check_proof_of_work(const util::Hash256& hash, std::uint32_t bits, const U256& pow_limit) {
  auto target = compact_to_target(bits);
  if (!target || target->is_zero() || *target > pow_limit) return false;
  return hash_to_u256(hash) <= *target;
}

std::uint32_t next_target(std::uint32_t prev_bits, std::int64_t actual_timespan_s,
                          std::int64_t target_timespan_s, const U256& pow_limit) {
  // Clamp the measured timespan to [T/4, 4T], as Bitcoin does.
  std::int64_t lo = target_timespan_s / 4;
  std::int64_t hi = target_timespan_s * 4;
  if (actual_timespan_s < lo) actual_timespan_s = lo;
  if (actual_timespan_s > hi) actual_timespan_s = hi;

  auto prev_target = compact_to_target(prev_bits);
  if (!prev_target) return prev_bits;

  // new = prev * actual / target. prev_target < 2^232 in practice, and the
  // multiplier fits in 64 bits, so compute via 512-bit product then divide.
  crypto::U512 prod = crypto::mul_full(*prev_target, U256(static_cast<std::uint64_t>(actual_timespan_s)));
  // prod / target_timespan: do the division on the 512-bit value by long
  // division through two 256-bit halves.
  U256 divisor(static_cast<std::uint64_t>(target_timespan_s));
  // Divide hi:lo by divisor using shift-subtract over 512 bits.
  U256 quotient_hi, quotient_lo, remainder;
  for (int i = 511; i >= 0; --i) {
    remainder = remainder.shifted_left(1);
    if ((prod.limb[static_cast<std::size_t>(i / 64)] >> (i % 64)) & 1) remainder.limb[0] |= 1;
    if (remainder >= divisor) {
      remainder = remainder - divisor;
      if (i >= 256) {
        quotient_hi.limb[static_cast<std::size_t>((i - 256) / 64)] |= (1ULL << (i % 64));
      } else {
        quotient_lo.limb[static_cast<std::size_t>(i / 64)] |= (1ULL << (i % 64));
      }
    }
  }
  U256 new_target = quotient_hi.is_zero() ? quotient_lo : pow_limit;
  if (new_target > pow_limit) new_target = pow_limit;
  if (new_target.is_zero()) new_target = U256(1);
  return target_to_compact(new_target);
}

}  // namespace icbtc::bitcoin
