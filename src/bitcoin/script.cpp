#include "bitcoin/script.h"

#include "crypto/ripemd160.h"
#include "crypto/schnorr.h"
#include "crypto/sha256.h"

namespace icbtc::bitcoin {

Bytes p2pkh_script(const util::Hash160& pubkey_hash) {
  Bytes s;
  s.reserve(25);
  s.push_back(OP_DUP);
  s.push_back(OP_HASH160);
  s.push_back(20);
  util::append(s, pubkey_hash.span());
  s.push_back(OP_EQUALVERIFY);
  s.push_back(OP_CHECKSIG);
  return s;
}

Bytes p2wpkh_script(const util::Hash160& pubkey_hash) {
  Bytes s;
  s.reserve(22);
  s.push_back(OP_0);
  s.push_back(20);
  util::append(s, pubkey_hash.span());
  return s;
}

Bytes op_return_script(ByteSpan data) {
  if (data.size() > 75) throw std::invalid_argument("op_return payload too large");
  Bytes s;
  s.reserve(data.size() + 2);
  s.push_back(OP_RETURN);
  s.push_back(static_cast<std::uint8_t>(data.size()));
  util::append(s, data);
  return s;
}

bool is_p2pkh(ByteSpan script) {
  return script.size() == 25 && script[0] == OP_DUP && script[1] == OP_HASH160 &&
         script[2] == 20 && script[23] == OP_EQUALVERIFY && script[24] == OP_CHECKSIG;
}

bool is_p2wpkh(ByteSpan script) {
  return script.size() == 22 && script[0] == OP_0 && script[1] == 20;
}

Bytes p2tr_script(const util::FixedBytes<32>& output_key) {
  Bytes s;
  s.reserve(34);
  s.push_back(OP_1);
  s.push_back(32);
  util::append(s, output_key.span());
  return s;
}

bool is_p2tr(ByteSpan script) {
  return script.size() == 34 && script[0] == OP_1 && script[1] == 32;
}

bool is_op_return(ByteSpan script) { return !script.empty() && script[0] == OP_RETURN; }

std::optional<util::Hash160> extract_pubkey_hash(ByteSpan script) {
  if (is_p2pkh(script)) return util::Hash160::from_span(script.subspan(3, 20));
  if (is_p2wpkh(script)) return util::Hash160::from_span(script.subspan(2, 20));
  return std::nullopt;
}

util::Hash256 legacy_sighash(const Transaction& tx, std::size_t input_index,
                             ByteSpan script_pubkey) {
  if (input_index >= tx.inputs.size()) {
    throw std::out_of_range("legacy_sighash: input index out of range");
  }
  // SIGHASH_ALL: serialize the tx with every scriptSig emptied except the
  // signed input, which carries the previous scriptPubKey, then append the
  // 4-byte sighash type and double-SHA256.
  Transaction copy = tx;
  for (std::size_t i = 0; i < copy.inputs.size(); ++i) {
    copy.inputs[i].script_sig =
        (i == input_index) ? Bytes(script_pubkey.begin(), script_pubkey.end()) : Bytes{};
  }
  util::ByteWriter w;
  copy.serialize(w);
  w.u32le(kSighashAll);
  return crypto::sha256d(w.data());
}

Bytes p2pkh_script_sig(const crypto::Signature& sig, ByteSpan pubkey) {
  Bytes der = sig.der();
  der.push_back(static_cast<std::uint8_t>(kSighashAll));
  Bytes s;
  s.reserve(der.size() + pubkey.size() + 2);
  s.push_back(static_cast<std::uint8_t>(der.size()));
  util::append(s, der);
  s.push_back(static_cast<std::uint8_t>(pubkey.size()));
  util::append(s, pubkey);
  return s;
}

std::optional<std::pair<Bytes, Bytes>> parse_p2pkh_script_sig(ByteSpan script_sig) {
  if (script_sig.size() < 2) return std::nullopt;
  std::size_t sig_len = script_sig[0];
  if (sig_len < 9 || 1 + sig_len + 1 > script_sig.size()) return std::nullopt;
  Bytes sig(script_sig.begin() + 1, script_sig.begin() + 1 + static_cast<std::ptrdiff_t>(sig_len));
  std::size_t key_off = 1 + sig_len;
  std::size_t key_len = script_sig[key_off];
  if (key_off + 1 + key_len != script_sig.size()) return std::nullopt;
  Bytes pubkey(script_sig.begin() + static_cast<std::ptrdiff_t>(key_off + 1), script_sig.end());
  return std::make_pair(std::move(sig), std::move(pubkey));
}

util::Hash256 taproot_sighash(const Transaction& tx, std::size_t input_index,
                              ByteSpan script_pubkey) {
  if (input_index >= tx.inputs.size()) {
    throw std::out_of_range("taproot_sighash: input index out of range");
  }
  Transaction copy = tx;
  for (std::size_t i = 0; i < copy.inputs.size(); ++i) {
    copy.inputs[i].script_sig =
        (i == input_index) ? Bytes(script_pubkey.begin(), script_pubkey.end()) : Bytes{};
  }
  util::ByteWriter w;
  w.u8(0x00);  // sighash type: default
  w.u32le(static_cast<std::uint32_t>(input_index));
  copy.serialize(w);
  return crypto::tagged_hash("TapSighash", w.data());
}

bool verify_p2tr_input(const Transaction& tx, std::size_t input_index, ByteSpan script_pubkey) {
  if (!is_p2tr(script_pubkey) || input_index >= tx.inputs.size()) return false;
  const auto& script_sig = tx.inputs[input_index].script_sig;
  auto sig = crypto::SchnorrSignature::parse(script_sig);
  if (!sig) return false;
  auto pubkey = crypto::XOnlyPublicKey::parse(script_pubkey.subspan(2, 32));
  if (!pubkey) return false;
  util::Hash256 digest = taproot_sighash(tx, input_index, script_pubkey);
  return crypto::schnorr_verify(*pubkey, digest, *sig);
}

bool verify_p2pkh_input(const Transaction& tx, std::size_t input_index, ByteSpan script_pubkey) {
  if (!is_p2pkh(script_pubkey) || input_index >= tx.inputs.size()) return false;
  auto parsed = parse_p2pkh_script_sig(tx.inputs[input_index].script_sig);
  if (!parsed) return false;
  auto& [sig_with_type, pubkey] = *parsed;
  if (sig_with_type.empty() || sig_with_type.back() != kSighashAll) return false;

  // Pubkey must hash to the locked hash.
  auto expected_hash = extract_pubkey_hash(script_pubkey);
  if (!expected_hash || crypto::hash160(pubkey) != *expected_hash) return false;

  auto point = crypto::AffinePoint::parse(pubkey);
  if (!point) return false;
  auto sig = crypto::Signature::from_der(
      ByteSpan(sig_with_type.data(), sig_with_type.size() - 1));
  if (!sig) return false;
  util::Hash256 digest = legacy_sighash(tx, input_index, script_pubkey);
  return crypto::verify(*point, digest, *sig);
}

}  // namespace icbtc::bitcoin
