#include "bitcoin/utxo.h"

#include "bitcoin/script.h"

namespace icbtc::bitcoin {

std::optional<UtxoEntry> UtxoSet::find(const OutPoint& op) const {
  auto it = entries_.find(op);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

void UtxoSet::add(const OutPoint& op, UtxoEntry entry) { entries_[op] = std::move(entry); }

std::optional<UtxoEntry> UtxoSet::remove(const OutPoint& op) {
  auto it = entries_.find(op);
  if (it == entries_.end()) return std::nullopt;
  UtxoEntry entry = std::move(it->second);
  entries_.erase(it);
  return entry;
}

std::optional<BlockUndo> UtxoSet::apply_block(const Block& block, int height) {
  BlockUndo undo;
  undo.height = height;
  // First pass: check all inputs are spendable so failure leaves the set
  // untouched. Outputs created earlier in the same block may be spent later
  // in it, so track intra-block creations.
  std::unordered_map<OutPoint, UtxoEntry> intra_block;
  std::unordered_map<OutPoint, bool> consumed;
  for (const auto& tx : block.transactions) {
    if (!tx.is_coinbase()) {
      for (const auto& in : tx.inputs) {
        if (consumed.contains(in.prevout)) return std::nullopt;  // double spend in block
        bool known = entries_.contains(in.prevout) || intra_block.contains(in.prevout);
        if (!known) return std::nullopt;
        consumed[in.prevout] = true;
      }
    }
    Hash256 txid = tx.txid();
    for (std::uint32_t i = 0; i < tx.outputs.size(); ++i) {
      if (is_op_return(tx.outputs[i].script_pubkey)) continue;
      intra_block[OutPoint{txid, i}] = UtxoEntry{tx.outputs[i], height, tx.is_coinbase()};
    }
  }

  // Second pass: mutate.
  for (const auto& tx : block.transactions) {
    if (!tx.is_coinbase()) {
      for (const auto& in : tx.inputs) {
        auto entry = remove(in.prevout);
        if (entry) {
          undo.spent.emplace_back(in.prevout, std::move(*entry));
        }
        // Inputs resolved intra-block never hit the set; their creations are
        // simply dropped below.
      }
    }
  }
  std::unordered_map<OutPoint, bool> spent_intra;
  for (const auto& tx : block.transactions) {
    if (tx.is_coinbase()) continue;
    for (const auto& in : tx.inputs) spent_intra[in.prevout] = true;
  }
  for (const auto& tx : block.transactions) {
    Hash256 txid = tx.txid();
    for (std::uint32_t i = 0; i < tx.outputs.size(); ++i) {
      OutPoint op{txid, i};
      if (is_op_return(tx.outputs[i].script_pubkey)) continue;
      if (spent_intra.contains(op)) continue;  // created and spent in-block
      add(op, UtxoEntry{tx.outputs[i], height, tx.is_coinbase()});
      undo.created.push_back(op);
    }
  }
  return undo;
}

void UtxoSet::undo_block(const BlockUndo& undo) {
  for (const auto& op : undo.created) entries_.erase(op);
  for (const auto& [op, entry] : undo.spent) entries_[op] = entry;
}

Amount UtxoSet::total_value() const {
  Amount total = 0;
  for (const auto& [op, entry] : entries_) total += entry.output.value;
  return total;
}

}  // namespace icbtc::bitcoin
