// Bitcoin monetary amounts in satoshi.
#pragma once

#include <cstdint>

namespace icbtc::bitcoin {

/// Amount in satoshi. Signed to make fee arithmetic (outputs - inputs) safe.
using Amount = std::int64_t;

constexpr Amount kCoin = 100'000'000;             // 1 BTC in satoshi
constexpr Amount kMaxMoney = 21'000'000 * kCoin;  // total supply cap

constexpr bool money_range(Amount a) { return a >= 0 && a <= kMaxMoney; }

/// Block subsidy after `halvings` halving intervals.
constexpr Amount block_subsidy(int halvings) {
  if (halvings >= 64) return 0;
  return (50 * kCoin) >> halvings;
}

}  // namespace icbtc::bitcoin
