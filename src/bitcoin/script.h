// Minimal Bitcoin script support: the standard output templates the wallet
// layer uses (P2PKH and P2WPKH), plus legacy-sighash transaction signing and
// signature checking for the simulated Bitcoin network's mempool policy.
//
// A full script interpreter is deliberately out of scope: the Bitcoin
// canister never validates transaction scripts (§III-C — it relies on the
// proof of work and the Bitcoin network's vetting), so only the standard
// templates the examples spend are needed.
#pragma once

#include <optional>

#include "bitcoin/transaction.h"
#include "crypto/ecdsa.h"
#include "util/bytes.h"

namespace icbtc::bitcoin {

// A subset of opcodes sufficient for the standard templates.
enum Opcode : std::uint8_t {
  OP_0 = 0x00,
  OP_1 = 0x51,
  OP_DUP = 0x76,
  OP_EQUAL = 0x87,
  OP_EQUALVERIFY = 0x88,
  OP_HASH160 = 0xa9,
  OP_CHECKSIG = 0xac,
  OP_RETURN = 0x6a,
};

/// SIGHASH type; only ALL is used by the wallet layer.
constexpr std::uint32_t kSighashAll = 0x01;

/// OP_DUP OP_HASH160 <20-byte hash> OP_EQUALVERIFY OP_CHECKSIG
Bytes p2pkh_script(const util::Hash160& pubkey_hash);

/// OP_0 <20-byte hash> (pay-to-witness-pubkey-hash)
Bytes p2wpkh_script(const util::Hash160& pubkey_hash);

/// OP_1 <32-byte x-only key> (pay-to-taproot, key-path only)
Bytes p2tr_script(const util::FixedBytes<32>& output_key);

/// OP_RETURN <data> (unspendable data carrier)
Bytes op_return_script(ByteSpan data);

/// If `script` is a standard P2PKH or P2WPKH output, returns the 20-byte
/// pubkey hash it pays.
std::optional<util::Hash160> extract_pubkey_hash(ByteSpan script);

bool is_p2pkh(ByteSpan script);
bool is_p2wpkh(ByteSpan script);
bool is_p2tr(ByteSpan script);
bool is_op_return(ByteSpan script);

/// The legacy (pre-segwit) signature hash for input `input_index` of `tx`
/// spending an output locked by `script_pubkey`, with SIGHASH_ALL.
util::Hash256 legacy_sighash(const Transaction& tx, std::size_t input_index,
                             ByteSpan script_pubkey);

/// Builds the scriptSig for a P2PKH input: <sig || sighash_type> <pubkey>.
Bytes p2pkh_script_sig(const crypto::Signature& sig, ByteSpan pubkey);

/// Parses a P2PKH scriptSig back into (DER signature + sighash byte, pubkey).
std::optional<std::pair<Bytes, Bytes>> parse_p2pkh_script_sig(ByteSpan script_sig);

/// Verifies that input `input_index` of `tx` correctly spends a P2PKH output
/// locked by `script_pubkey` (signature and pubkey-hash check). This is what
/// the simulated Bitcoin nodes run as mempool/block policy.
bool verify_p2pkh_input(const Transaction& tx, std::size_t input_index, ByteSpan script_pubkey);

/// Taproot key-path signature hash. Simplified from BIP-341: a tagged hash
/// over the legacy-style transaction commitment (this library's transactions
/// carry no witness section, so the witness-specific fields are absent); the
/// binding properties relevant to the simulation are identical.
util::Hash256 taproot_sighash(const Transaction& tx, std::size_t input_index,
                              ByteSpan script_pubkey);

/// Verifies a taproot key-path spend: the scriptSig must hold a 64-byte
/// BIP-340 signature by the output key over taproot_sighash.
bool verify_p2tr_input(const Transaction& tx, std::size_t input_index, ByteSpan script_pubkey);

}  // namespace icbtc::bitcoin
