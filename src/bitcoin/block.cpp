#include "bitcoin/block.h"

#include <cstring>

#include "crypto/sha256.h"

namespace icbtc::bitcoin {

void BlockHeader::serialize(util::ByteWriter& w) const {
  w.i32le(version);
  w.bytes(prev_hash.span());
  w.bytes(merkle_root.span());
  w.u32le(time);
  w.u32le(bits);
  w.u32le(nonce);
}

BlockHeader BlockHeader::deserialize(util::ByteReader& r) {
  BlockHeader h;
  h.version = r.i32le();
  h.prev_hash = r.hash256();
  h.merkle_root = r.hash256();
  h.time = r.u32le();
  h.bits = r.u32le();
  h.nonce = r.u32le();
  return h;
}

Bytes BlockHeader::serialize() const {
  util::ByteWriter w;
  serialize(w);
  return std::move(w).take();
}

BlockHeader BlockHeader::parse(ByteSpan data) {
  util::ByteReader r(data);
  BlockHeader h = deserialize(r);
  if (!r.done()) throw util::DecodeError("trailing bytes after block header");
  return h;
}

Hash256 BlockHeader::hash() const { return crypto::sha256d(serialize()); }

void Block::serialize(util::ByteWriter& w) const {
  header.serialize(w);
  w.varint(transactions.size());
  for (const auto& tx : transactions) tx.serialize(w);
}

Block Block::deserialize(util::ByteReader& r) {
  Block b;
  b.header = BlockHeader::deserialize(r);
  std::size_t n = r.checked_len(r.varint());
  b.transactions.reserve(n);
  for (std::size_t i = 0; i < n; ++i) b.transactions.push_back(Transaction::deserialize(r));
  return b;
}

Bytes Block::serialize() const {
  util::ByteWriter w;
  serialize(w);
  return std::move(w).take();
}

Block Block::parse(ByteSpan data) {
  util::ByteReader r(data);
  Block b = deserialize(r);
  if (!r.done()) throw util::DecodeError("trailing bytes after block");
  return b;
}

std::vector<Hash256> Block::txids(parallel::ThreadPool* pool) const {
  std::vector<Hash256> out(transactions.size());
  // txid() is a pure function of the tx bytes and seeds each tx's cache, so
  // computing the uncached ones concurrently is observationally identical to
  // the serial loop.
  parallel::parallel_for(pool, transactions.size(),
                         [&](std::size_t i) { out[i] = transactions[i].txid(); });
  return out;
}

Hash256 Block::compute_merkle_root(parallel::ThreadPool* pool) const {
  return merkle_root(txids(pool));
}

bool Block::is_well_formed(parallel::ThreadPool* pool) const {
  if (transactions.empty()) return false;
  if (!transactions[0].is_coinbase()) return false;
  for (std::size_t i = 0; i < transactions.size(); ++i) {
    if (i > 0 && transactions[i].is_coinbase()) return false;
    if (!transactions[i].is_well_formed()) return false;
  }
  return compute_merkle_root(pool) == header.merkle_root;
}

Hash256 merkle_root(const std::vector<Hash256>& txids) {
  if (txids.empty()) return Hash256{};
  std::vector<Hash256> level = txids;
  std::uint8_t node[64];
  while (level.size() > 1) {
    if (level.size() % 2 == 1) level.push_back(level.back());
    for (std::size_t i = 0; i < level.size(); i += 2) {
      // Inner node = sha256d(left || right): exactly 64 bytes, hashed via the
      // fixed-size fast path with no heap allocation.
      std::memcpy(node, level[i].data.data(), 32);
      std::memcpy(node + 32, level[i + 1].data.data(), 32);
      level[i / 2] = crypto::sha256d_64(node);
    }
    level.resize(level.size() / 2);
  }
  return level[0];
}

}  // namespace icbtc::bitcoin
