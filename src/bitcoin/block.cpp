#include "bitcoin/block.h"

#include "crypto/sha256.h"

namespace icbtc::bitcoin {

void BlockHeader::serialize(util::ByteWriter& w) const {
  w.i32le(version);
  w.bytes(prev_hash.span());
  w.bytes(merkle_root.span());
  w.u32le(time);
  w.u32le(bits);
  w.u32le(nonce);
}

BlockHeader BlockHeader::deserialize(util::ByteReader& r) {
  BlockHeader h;
  h.version = r.i32le();
  h.prev_hash = r.hash256();
  h.merkle_root = r.hash256();
  h.time = r.u32le();
  h.bits = r.u32le();
  h.nonce = r.u32le();
  return h;
}

Bytes BlockHeader::serialize() const {
  util::ByteWriter w;
  serialize(w);
  return std::move(w).take();
}

BlockHeader BlockHeader::parse(ByteSpan data) {
  util::ByteReader r(data);
  BlockHeader h = deserialize(r);
  if (!r.done()) throw util::DecodeError("trailing bytes after block header");
  return h;
}

Hash256 BlockHeader::hash() const { return crypto::sha256d(serialize()); }

void Block::serialize(util::ByteWriter& w) const {
  header.serialize(w);
  w.varint(transactions.size());
  for (const auto& tx : transactions) tx.serialize(w);
}

Block Block::deserialize(util::ByteReader& r) {
  Block b;
  b.header = BlockHeader::deserialize(r);
  std::size_t n = r.checked_len(r.varint());
  b.transactions.reserve(n);
  for (std::size_t i = 0; i < n; ++i) b.transactions.push_back(Transaction::deserialize(r));
  return b;
}

Bytes Block::serialize() const {
  util::ByteWriter w;
  serialize(w);
  return std::move(w).take();
}

Block Block::parse(ByteSpan data) {
  util::ByteReader r(data);
  Block b = deserialize(r);
  if (!r.done()) throw util::DecodeError("trailing bytes after block");
  return b;
}

Hash256 Block::compute_merkle_root() const {
  std::vector<Hash256> txids;
  txids.reserve(transactions.size());
  for (const auto& tx : transactions) txids.push_back(tx.txid());
  return merkle_root(txids);
}

bool Block::is_well_formed() const {
  if (transactions.empty()) return false;
  if (!transactions[0].is_coinbase()) return false;
  for (std::size_t i = 0; i < transactions.size(); ++i) {
    if (i > 0 && transactions[i].is_coinbase()) return false;
    if (!transactions[i].is_well_formed()) return false;
  }
  return compute_merkle_root() == header.merkle_root;
}

Hash256 merkle_root(const std::vector<Hash256>& txids) {
  if (txids.empty()) return Hash256{};
  std::vector<Hash256> level = txids;
  while (level.size() > 1) {
    if (level.size() % 2 == 1) level.push_back(level.back());
    std::vector<Hash256> next;
    next.reserve(level.size() / 2);
    for (std::size_t i = 0; i < level.size(); i += 2) {
      util::Bytes concat;
      concat.reserve(64);
      util::append(concat, level[i].span());
      util::append(concat, level[i + 1].span());
      next.push_back(crypto::sha256d(concat));
    }
    level = std::move(next);
  }
  return level[0];
}

}  // namespace icbtc::bitcoin
