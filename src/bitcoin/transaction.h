// Bitcoin transaction structures and (de)serialization (legacy format).
#pragma once

#include <cstdint>
#include <vector>

#include "bitcoin/amount.h"
#include "util/byteio.h"
#include "util/bytes.h"

namespace icbtc::bitcoin {

using util::Bytes;
using util::ByteSpan;
using util::Hash256;

/// Reference to a transaction output: (txid, output index).
struct OutPoint {
  Hash256 txid;
  std::uint32_t vout = 0;

  bool is_null() const { return txid.is_zero() && vout == 0xffffffff; }
  static OutPoint null() { return OutPoint{Hash256{}, 0xffffffff}; }

  auto operator<=>(const OutPoint&) const = default;

  void serialize(util::ByteWriter& w) const;
  static OutPoint deserialize(util::ByteReader& r);
};

struct TxIn {
  OutPoint prevout;
  Bytes script_sig;
  std::uint32_t sequence = 0xffffffff;

  bool operator==(const TxIn&) const = default;

  void serialize(util::ByteWriter& w) const;
  static TxIn deserialize(util::ByteReader& r);
};

struct TxOut {
  Amount value = 0;
  Bytes script_pubkey;

  bool operator==(const TxOut&) const = default;

  void serialize(util::ByteWriter& w) const;
  static TxOut deserialize(util::ByteReader& r);
};

struct Transaction {
  std::int32_t version = 2;
  std::vector<TxIn> inputs;
  std::vector<TxOut> outputs;
  std::uint32_t lock_time = 0;

  bool operator==(const Transaction&) const = default;

  /// True for a coinbase transaction (single input spending the null outpoint).
  bool is_coinbase() const {
    return inputs.size() == 1 && inputs[0].prevout.is_null();
  }

  Bytes serialize() const;
  void serialize(util::ByteWriter& w) const;
  static Transaction deserialize(util::ByteReader& r);
  /// Parses a full buffer; throws util::DecodeError on trailing bytes.
  static Transaction parse(ByteSpan data);

  /// Transaction id: double-SHA256 of the serialization (internal byte order).
  Hash256 txid() const;

  Amount total_output_value() const {
    Amount sum = 0;
    for (const auto& o : outputs) sum += o.value;
    return sum;
  }

  /// Serialized size in bytes.
  std::size_t size() const { return serialize().size(); }

  /// Basic syntactic checks mirroring what the Bitcoin canister's
  /// send_transaction endpoint performs: non-empty inputs/outputs, values in
  /// the money range, no duplicate inputs.
  bool is_well_formed() const;
};

}  // namespace icbtc::bitcoin

namespace std {
template <>
struct hash<icbtc::bitcoin::OutPoint> {
  size_t operator()(const icbtc::bitcoin::OutPoint& o) const noexcept {
    return std::hash<icbtc::util::Hash256>{}(o.txid) * 1000003u ^ o.vout;
  }
};
}  // namespace std
