// Bitcoin transaction structures and (de)serialization (legacy format).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "bitcoin/amount.h"
#include "util/byteio.h"
#include "util/bytes.h"

namespace icbtc::bitcoin {

using util::Bytes;
using util::ByteSpan;
using util::Hash256;

/// Reference to a transaction output: (txid, output index).
struct OutPoint {
  Hash256 txid;
  std::uint32_t vout = 0;

  bool is_null() const { return txid.is_zero() && vout == 0xffffffff; }
  static OutPoint null() { return OutPoint{Hash256{}, 0xffffffff}; }

  auto operator<=>(const OutPoint&) const = default;

  void serialize(util::ByteWriter& w) const;
  static OutPoint deserialize(util::ByteReader& r);
};

struct TxIn {
  OutPoint prevout;
  Bytes script_sig;
  std::uint32_t sequence = 0xffffffff;

  bool operator==(const TxIn&) const = default;

  void serialize(util::ByteWriter& w) const;
  static TxIn deserialize(util::ByteReader& r);
};

struct TxOut {
  Amount value = 0;
  Bytes script_pubkey;

  bool operator==(const TxOut&) const = default;

  void serialize(util::ByteWriter& w) const;
  static TxOut deserialize(util::ByteReader& r);
};

struct Transaction {
  std::int32_t version = 2;
  std::vector<TxIn> inputs;
  std::vector<TxOut> outputs;
  std::uint32_t lock_time = 0;

  Transaction() = default;
  // The txid cache is per-value state, not identity: copies adopt the source's
  // cached hash (same logical tx, same txid); a moved-from source is left
  // invalidated because its field contents are gone.
  Transaction(const Transaction& other);
  Transaction(Transaction&& other) noexcept;
  Transaction& operator=(const Transaction& other);
  Transaction& operator=(Transaction&& other) noexcept;

  /// Logical equality over the four serialized fields; the txid cache is
  /// excluded (it is derived state).
  bool operator==(const Transaction& other) const {
    return version == other.version && inputs == other.inputs && outputs == other.outputs &&
           lock_time == other.lock_time;
  }

  /// True for a coinbase transaction (single input spending the null outpoint).
  bool is_coinbase() const {
    return inputs.size() == 1 && inputs[0].prevout.is_null();
  }

  Bytes serialize() const;
  void serialize(util::ByteWriter& w) const;
  static Transaction deserialize(util::ByteReader& r);
  /// Parses a full buffer; throws util::DecodeError on trailing bytes.
  static Transaction parse(ByteSpan data);

  /// Transaction id: double-SHA256 of the serialization (internal byte order).
  /// Memoized — the first call (or deserialize()) computes and caches the
  /// hash; later calls return it for free. Contract: code that mutates the
  /// public fields of a tx that may already have been hashed must call
  /// invalidate_txid() afterwards (the hot paths — relay, ingestion, merkle
  /// validation — treat transactions as immutable once parsed).
  Hash256 txid() const;

  /// Drops the cached txid after a field mutation.
  void invalidate_txid() { txid_state_.store(kTxidEmpty, std::memory_order_release); }

  /// Whether a txid is currently cached (test/bench introspection).
  bool txid_cached() const { return txid_state_.load(std::memory_order_acquire) == kTxidReady; }

  /// Process-wide count of full txid computations (serialize + sha256d), for
  /// tests asserting each tx is hashed exactly once on a hot path.
  static std::uint64_t txid_computations();

  /// Globally enables/disables the cache (default on). Benches disable it to
  /// measure the pre-cache baseline; with the cache off every txid() call
  /// recomputes and deserialize() skips the eager fill.
  static void set_txid_cache_enabled(bool enabled);
  static bool txid_cache_enabled();

  Amount total_output_value() const {
    Amount sum = 0;
    for (const auto& o : outputs) sum += o.value;
    return sum;
  }

  /// Serialized size in bytes.
  std::size_t size() const { return serialize().size(); }

  /// Basic syntactic checks mirroring what the Bitcoin canister's
  /// send_transaction endpoint performs: non-empty inputs/outputs, values in
  /// the money range, no duplicate inputs.
  bool is_well_formed() const;

 private:
  static constexpr std::uint8_t kTxidEmpty = 0;
  static constexpr std::uint8_t kTxidFilling = 1;
  static constexpr std::uint8_t kTxidReady = 2;

  void adopt_cache(const Transaction& other);
  void seed_txid(const Hash256& h) const;

  // Lazy memoized txid. The state machine (empty → filling → ready) makes
  // concurrent txid() calls on the same const tx safe: both compute the same
  // pure value and the CAS loser simply discards its copy.
  mutable std::atomic<std::uint8_t> txid_state_{kTxidEmpty};
  mutable Hash256 txid_cache_{};
};

}  // namespace icbtc::bitcoin

namespace std {
template <>
struct hash<icbtc::bitcoin::OutPoint> {
  size_t operator()(const icbtc::bitcoin::OutPoint& o) const noexcept {
    return std::hash<icbtc::util::Hash256>{}(o.txid) * 1000003u ^ o.vout;
  }
};
}  // namespace std
