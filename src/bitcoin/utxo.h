// Outpoint-indexed UTXO set with per-block undo data, as a full node
// maintains along its best chain.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "bitcoin/block.h"
#include "bitcoin/transaction.h"

namespace icbtc::bitcoin {

struct UtxoEntry {
  TxOut output;
  int height = 0;
  bool coinbase = false;

  bool operator==(const UtxoEntry&) const = default;
};

/// Data needed to roll a connected block back off the UTXO set.
struct BlockUndo {
  /// The entries consumed by the block's inputs, in input order.
  std::vector<std::pair<OutPoint, UtxoEntry>> spent;
  /// The outpoints the block created.
  std::vector<OutPoint> created;
  int height = 0;
};

class UtxoSet {
 public:
  std::size_t size() const { return entries_.size(); }
  bool contains(const OutPoint& op) const { return entries_.contains(op); }
  std::optional<UtxoEntry> find(const OutPoint& op) const;

  void add(const OutPoint& op, UtxoEntry entry);
  /// Removes and returns the entry; nullopt if absent.
  std::optional<UtxoEntry> remove(const OutPoint& op);

  /// Applies a block at `height`: spends each non-coinbase input and creates
  /// each output (OP_RETURN outputs are unspendable and skipped). Returns the
  /// undo data, or nullopt (set unchanged) if an input is missing.
  std::optional<BlockUndo> apply_block(const Block& block, int height);

  /// Reverses apply_block.
  void undo_block(const BlockUndo& undo);

  /// Total value held in the set.
  Amount total_value() const;

  const std::unordered_map<OutPoint, UtxoEntry>& entries() const { return entries_; }

 private:
  std::unordered_map<OutPoint, UtxoEntry> entries_;
};

}  // namespace icbtc::bitcoin
