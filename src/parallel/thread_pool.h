// Fixed-size worker pool with a deterministic parallel_map primitive.
//
// The pool is built for the block-ingestion hot path: a block's txids and
// merkle leaf hashes are pure functions of the transaction bytes, so they can
// be computed on any thread in any order as long as each result lands at the
// index of its input. parallel_map guarantees exactly that — out[i] is
// fn(items[i]) regardless of thread count or scheduling — which keeps seeded
// simulation runs byte-identical whether a pool is used or not.
//
// Parallelism is opt-in: `shared_pool()` returns nullptr until
// `set_shared_pool(threads)` installs one, and every consumer treats a null
// pool as "run serially on the caller's thread".
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace icbtc::parallel {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1). The caller's thread also
  /// participates in run(), so total concurrency is threads + 1.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return workers_.size(); }

  /// Invokes fn(i) for every i in [0, n), spread across the workers and the
  /// calling thread, and returns when all n calls have finished. fn must be
  /// safe to call concurrently for distinct i.
  ///
  /// Concurrent run() calls from different threads are safe: submissions are
  /// serialized on an internal mutex, so overlapping fan-outs execute one
  /// after the other, each to completion, and neither can strand the other's
  /// items. Reentrant run() from inside fn (on the same pool) remains
  /// unsupported and deadlocks on the submission mutex.
  void run(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Attaches pool instrumentation resolved once from `registry` (null
  /// detaches):
  ///   pool.runs            counter — run() fan-outs submitted
  ///   pool.tasks_executed  counter — individual fn(i) items completed
  ///   pool.queue_depth     gauge   — items published but not yet finished
  ///   pool.workers_busy    gauge   — threads currently inside fn
  /// Serialized against run() on the submission mutex; in-flight fan-outs
  /// keep the instruments they started with. Gauge updates are ordered
  /// before each item's completion count, so by the time run() returns both
  /// gauges read exactly 0 again — post-run snapshots are deterministic.
  void set_metrics(obs::MetricsRegistry* registry);

 private:
  struct Job;

  struct Instruments {
    obs::Counter* runs = nullptr;
    obs::Counter* tasks_executed = nullptr;
    obs::Gauge* queue_depth = nullptr;
    obs::Gauge* workers_busy = nullptr;
  };

  void worker_loop();
  static void work_on(Job& job);

  std::vector<std::thread> workers_;
  /// Held for the whole duration of one run(): publication, participation,
  /// and completion wait. Serializes concurrent submitters so current_ /
  /// generation_ describe exactly one in-flight job at a time.
  std::mutex submit_mu_;
  /// Guarded by submit_mu_; copied into each Job at publication.
  Instruments instruments_;
  std::mutex mu_;
  std::condition_variable job_ready_;
  std::shared_ptr<Job> current_;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

// ---------------------------------------------------------------------------
// Process-wide shared pool
//
// Lifecycle contract: the shared pool is owned by a process-wide
// shared_ptr. set_shared_pool() atomically (mutex-guarded) replaces the
// owning pointer; the previous pool is destroyed when its last reference
// drops, NOT at replacement time. Callers that may overlap a replacement —
// anything outside single-threaded setup — must acquire the pool via
// shared_pool_ref() and keep the returned shared_ptr alive for the duration
// of their fan-out: an in-flight run() then completes on the old pool while
// new acquirers already see the replacement (or nullptr). The raw
// shared_pool() accessor is a convenience for setup/teardown phases where no
// replacement can race; the pointer it returns is only guaranteed valid
// until the next set_shared_pool() call.
// ---------------------------------------------------------------------------

/// The process-wide pool used by hashing helpers when none is passed
/// explicitly. Null (serial execution) until set_shared_pool() is called.
/// Raw observer — see the lifecycle contract above.
ThreadPool* shared_pool();

/// Owning reference to the process-wide pool (null when none installed).
/// Safe against concurrent set_shared_pool(): the pool stays alive for as
/// long as the returned shared_ptr does.
std::shared_ptr<ThreadPool> shared_pool_ref();

/// Installs a process-wide pool with `threads` workers (replacing any
/// previous one), or tears it down when threads == 0. Safe to call while
/// other threads hold shared_pool_ref() references: they keep the old pool
/// alive until their fan-outs finish. Only raw shared_pool() pointers
/// obtained before the call are invalidated.
void set_shared_pool(std::size_t threads);

/// Deterministic parallel map: out[i] = fn(items[i]) for every i, computed on
/// `pool` when non-null (plus the calling thread) or serially otherwise.
/// fn must be a pure function of its argument for determinism to hold.
template <typename T, typename R, typename Fn>
void parallel_map(ThreadPool* pool, const std::vector<T>& items, std::vector<R>& out, Fn&& fn) {
  out.resize(items.size());
  if (pool == nullptr || items.size() <= 1) {
    for (std::size_t i = 0; i < items.size(); ++i) out[i] = fn(items[i]);
    return;
  }
  const std::function<void(std::size_t)> task = [&](std::size_t i) { out[i] = fn(items[i]); };
  pool->run(items.size(), task);
}

/// Index-based variant for callers whose inputs are not a plain vector.
template <typename Fn>
void parallel_for(ThreadPool* pool, std::size_t n, Fn&& fn) {
  if (pool == nullptr || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::function<void(std::size_t)> task = [&](std::size_t i) { fn(i); };
  pool->run(n, task);
}

}  // namespace icbtc::parallel
