#include "parallel/thread_pool.h"

#include <atomic>
#include <utility>

namespace icbtc::parallel {

// One fan-out of run(): a shared work counter claimed lock-free by whichever
// threads show up. Heap-allocated per run and held via shared_ptr so a worker
// that wakes up late can still probe a completed job safely (its claim just
// fails) instead of racing a reused slot.
struct ThreadPool::Job {
  std::size_t n = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  /// Snapshot of the pool's instruments at publication time, so a fan-out
  /// keeps reporting to the registry it started with even if set_metrics()
  /// swaps instruments while stragglers are still draining claims.
  Instruments ins;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex mu;
  std::condition_variable cv;
};

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  job_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::work_on(Job& job) {
  for (;;) {
    std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.n) break;
    // job.fn is guaranteed alive here: run() cannot return until this claimed
    // item's done-increment lands.
    if (job.ins.workers_busy != nullptr) job.ins.workers_busy->add(1);
    (*job.fn)(i);
    // Instrument updates stay ahead of the done-increment: the release half
    // of the fetch_add below publishes them before the submitter can observe
    // completion, so run() returns with queue_depth/workers_busy back at 0.
    if (job.ins.workers_busy != nullptr) {
      job.ins.workers_busy->add(-1);
      job.ins.queue_depth->add(-1);
      job.ins.tasks_executed->inc();
    }
    if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 == job.n) {
      std::lock_guard<std::mutex> lock(job.mu);
      job.cv.notify_all();
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      job_ready_.wait(lock, [&] { return stop_ || (generation_ != seen && current_ != nullptr); });
      if (stop_) return;
      seen = generation_;
      job = current_;
    }
    work_on(*job);
  }
}

void ThreadPool::run(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // One submission at a time: without this, two overlapping run() calls
  // would clobber current_/generation_ — workers could strand on the
  // overwritten job while its submitter ground through every item alone,
  // and the overwriting submitter could return before stragglers finished
  // claiming its items. The second submitter simply queues behind the
  // first; each fan-out still uses every worker.
  std::lock_guard<std::mutex> submit(submit_mu_);
  auto job = std::make_shared<Job>();
  job->n = n;
  job->fn = &fn;
  job->ins = instruments_;
  if (instruments_.runs != nullptr) {
    instruments_.runs->inc();
    instruments_.queue_depth->add(static_cast<std::int64_t>(n));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = job;
    ++generation_;
  }
  job_ready_.notify_all();

  work_on(*job);

  {
    std::unique_lock<std::mutex> lock(job->mu);
    job->cv.wait(lock, [&] { return job->done.load(std::memory_order_acquire) >= job->n; });
  }
  std::lock_guard<std::mutex> lock(mu_);
  current_.reset();
}

void ThreadPool::set_metrics(obs::MetricsRegistry* registry) {
  // Serialize against run(): instruments_ is only read under submit_mu_.
  std::lock_guard<std::mutex> submit(submit_mu_);
  if (registry == nullptr) {
    instruments_ = {};
    return;
  }
  instruments_.runs = &registry->counter("pool.runs");
  instruments_.tasks_executed = &registry->counter("pool.tasks_executed");
  instruments_.queue_depth = &registry->gauge("pool.queue_depth");
  instruments_.workers_busy = &registry->gauge("pool.workers_busy");
}

namespace {
// Process-wide singleton, owned via shared_ptr so replacement cannot free a
// pool out from under an in-flight fan-out: shared_pool_ref() holders keep
// the old pool alive until they finish; the destructor (which joins the
// workers) then runs on whichever thread drops the last reference.
std::mutex g_pool_mu;
std::shared_ptr<ThreadPool> g_shared_pool;  // NOLINT: intentional process-wide singleton
}  // namespace

ThreadPool* shared_pool() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  return g_shared_pool.get();
}

std::shared_ptr<ThreadPool> shared_pool_ref() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  return g_shared_pool;
}

void set_shared_pool(std::size_t threads) {
  // Construct the replacement outside the lock (spawning threads is slow),
  // swap under it, and let `old` drop after release: if a fan-out is still
  // running on the old pool through a shared_pool_ref() reference, teardown
  // defers to that holder instead of use-after-freeing it.
  std::shared_ptr<ThreadPool> next =
      threads > 0 ? std::make_shared<ThreadPool>(threads) : nullptr;
  std::shared_ptr<ThreadPool> old;
  {
    std::lock_guard<std::mutex> lock(g_pool_mu);
    old = std::exchange(g_shared_pool, std::move(next));
  }
}

}  // namespace icbtc::parallel
