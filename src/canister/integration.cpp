#include "canister/integration.h"

namespace icbtc::canister {

BitcoinIntegration::BitcoinIntegration(ic::Subnet& subnet, btcnet::Network& bitcoin_network,
                                       const bitcoin::ChainParams& params,
                                       IntegrationConfig config, std::uint64_t seed)
    : subnet_(&subnet),
      bitcoin_network_(&bitcoin_network),
      config_(config),
      canister_(params, config.canister) {
  util::Rng rng(seed);
  adapters_.reserve(subnet.config().num_nodes);
  for (std::uint32_t i = 0; i < subnet.config().num_nodes; ++i) {
    adapters_.push_back(std::make_unique<adapter::BitcoinAdapter>(
        bitcoin_network, params, config.adapter, rng.fork()));
  }
}

BitcoinIntegration::~BitcoinIntegration() { stop(); }

void BitcoinIntegration::start() {
  if (running_) return;
  running_ = true;
  for (auto& adapter : adapters_) adapter->start();
  heartbeat_id_ = subnet_->register_heartbeat([this](const ic::RoundInfo& info) {
    on_round(info);
  });
}

void BitcoinIntegration::stop() {
  if (!running_) return;
  running_ = false;
  subnet_->unregister_heartbeat(heartbeat_id_);
  for (auto& adapter : adapters_) adapter->stop();
}

void BitcoinIntegration::set_tracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  canister_.set_tracer(tracer);
  for (auto& adapter : adapters_) adapter->set_tracer(tracer);
}

void BitcoinIntegration::set_slo(obs::SloTracker* slo) {
  canister_.set_slo(slo);
  for (auto& adapter : adapters_) adapter->set_slo(slo);
  subnet_->set_slo(slo);
}

void BitcoinIntegration::on_round(const ic::RoundInfo& info) {
  if (canister_down_) return;
  if (info.round % config_.request_every_rounds != 0) return;

  // The canister's request goes through consensus; whichever replica makes
  // this round's block supplies the adapter response included in it. The
  // round span parents both the adapter's handle_request and the canister's
  // process_response, giving one Algorithm 1+2 trace per round-trip.
  obs::ScopedSpan span(tracer_, "ic.round_request", "ic");
  span.attr("round", info.round);
  span.attr("block_maker", static_cast<std::uint64_t>(info.block_maker));
  if (info.block_maker_byzantine) span.attr("byzantine", "true");

  adapter::AdapterRequest request = canister_.make_request();
  ++requests_made_;

  std::optional<adapter::AdapterResponse> response;
  if (info.block_maker_byzantine && byzantine_provider_) {
    response = byzantine_provider_(request, info);
  }
  if (!response) {
    response = adapters_.at(info.block_maker)->handle_request(request);
  }
  std::int64_t now_s =
      static_cast<std::int64_t>(canister_.params().genesis_header.time) +
      subnet_->sim().now() / util::kSecond;
  canister_.process_response(*response, now_s);
}

std::size_t BitcoinIntegration::utxos_response_bytes(
    const Outcome<GetUtxosResponse>& outcome) {
  if (!outcome.ok()) return 16;
  // outpoint (36) + value (8) + height (4) per UTXO, plus tip metadata.
  return 48 * outcome.value.utxos.size() + 44;
}

namespace {
/// Binds a finished client call to its trace: attrs on the root request
/// span (ended at the modelled call latency) plus one RequestCostRecord —
/// a Fig. 7 data point.
template <typename T>
void finish_request_trace(obs::ScopedSpan& span, const char* endpoint,
                          const CallResult<T>& result) {
  if (!span.active()) return;
  span.attr("latency_us", static_cast<std::int64_t>(result.latency));
  span.attr("instructions", result.instructions);
  span.attr("response_bytes", static_cast<std::uint64_t>(result.response_bytes));
  span.attr("cycles", result.cycles);
  obs::Tracer* tracer = span.tracer();
  tracer->record_request_cost(obs::RequestCostRecord{
      endpoint, span.context().trace_id, result.latency, result.instructions,
      static_cast<std::uint64_t>(result.response_bytes), result.cycles});
  span.end_at(span.start() + result.latency);
}
}  // namespace

CallResult<Outcome<GetUtxosResponse>> BitcoinIntegration::replicated_get_utxos(
    const GetUtxosRequest& request) {
  CallResult<Outcome<GetUtxosResponse>> result;
  obs::ScopedSpan span(tracer_, "request.get_utxos", "request");
  span.attr("kind", "replicated");
  ic::InstructionMeter::Segment segment(canister_.meter());
  result.outcome = canister_.get_utxos(request);
  result.instructions = segment.sample();
  result.response_bytes = utxos_response_bytes(result.outcome);
  result.latency = subnet_->sample_update_latency(result.instructions);
  result.cycles = subnet_->config().cost_model.update_cost_cycles(result.instructions,
                                                                  result.response_bytes);
  span.attr("status", to_string(result.outcome.status));
  finish_request_trace(span, "get_utxos", result);
  return result;
}

CallResult<Outcome<GetUtxosResponse>> BitcoinIntegration::query_get_utxos(
    const GetUtxosRequest& request) {
  CallResult<Outcome<GetUtxosResponse>> result;
  obs::ScopedSpan span(tracer_, "request.get_utxos", "request");
  span.attr("kind", "query");
  ic::InstructionMeter::Segment segment(canister_.meter());
  result.outcome = canister_.get_utxos(request);
  result.instructions = segment.sample();
  result.response_bytes = utxos_response_bytes(result.outcome);
  result.latency = subnet_->sample_query_latency(result.instructions);
  result.cycles = subnet_->config().cost_model.query_base;  // queries are free
  span.attr("status", to_string(result.outcome.status));
  finish_request_trace(span, "get_utxos.query", result);
  return result;
}

CallResult<Outcome<bitcoin::Amount>> BitcoinIntegration::replicated_get_balance(
    const std::string& address, int min_confirmations) {
  CallResult<Outcome<bitcoin::Amount>> result;
  obs::ScopedSpan span(tracer_, "request.get_balance", "request");
  span.attr("kind", "replicated");
  ic::InstructionMeter::Segment segment(canister_.meter());
  result.outcome = canister_.get_balance(address, min_confirmations);
  result.instructions = segment.sample();
  result.response_bytes = 16;
  result.latency = subnet_->sample_update_latency(result.instructions);
  result.cycles = subnet_->config().cost_model.update_cost_cycles(result.instructions,
                                                                  result.response_bytes);
  span.attr("status", to_string(result.outcome.status));
  finish_request_trace(span, "get_balance", result);
  return result;
}

CallResult<Outcome<bitcoin::Amount>> BitcoinIntegration::query_get_balance(
    const std::string& address, int min_confirmations) {
  CallResult<Outcome<bitcoin::Amount>> result;
  obs::ScopedSpan span(tracer_, "request.get_balance", "request");
  span.attr("kind", "query");
  ic::InstructionMeter::Segment segment(canister_.meter());
  result.outcome = canister_.get_balance(address, min_confirmations);
  result.instructions = segment.sample();
  result.response_bytes = 16;
  result.latency = subnet_->sample_query_latency(result.instructions);
  result.cycles = subnet_->config().cost_model.query_base;
  span.attr("status", to_string(result.outcome.status));
  finish_request_trace(span, "get_balance.query", result);
  return result;
}

CallResult<Status> BitcoinIntegration::replicated_send_transaction(const util::Bytes& raw_tx) {
  CallResult<Status> result;
  obs::ScopedSpan span(tracer_, "request.send_transaction", "request");
  span.attr("kind", "replicated");
  ic::InstructionMeter::Segment segment(canister_.meter());
  result.outcome = canister_.send_transaction(raw_tx);
  result.instructions = segment.sample();
  result.response_bytes = 8;
  result.latency = subnet_->sample_update_latency(result.instructions);
  result.cycles = subnet_->config().cost_model.update_cost_cycles(result.instructions,
                                                                  result.response_bytes);
  span.attr("status", to_string(result.outcome));
  finish_request_trace(span, "send_transaction", result);
  return result;
}

}  // namespace icbtc::canister
