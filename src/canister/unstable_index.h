// Incremental delta index over the canister's unstable blocks (§III-C).
//
// The Bitcoin canister serves get_utxos/get_balance against the merged
// stable + unstable view. The naive implementation re-scans every
// transaction of every unstable block on every request — O(unstable chain)
// per call, hundreds of thousands of tx visits at mainnet shape (δ=144
// blocks above the anchor). This index makes the read path O(relevant): when
// a block enters the unstable set its per-block delta is computed exactly
// once — `scriptPubKey → outputs added` plus the block's spent-outpoint set
// and a bloom-style "may touch script" summary for cheap negative lookups —
// and queries assemble their view from chain-ordered delta lookups, with a
// tip-keyed memo so repeated queries for hot scripts touch only their own
// entries.
//
// Metering contract: the index changes HOST wall-clock only. The instruction
// meter models the IC canister's measured request costs (Fig. 7), so the
// indexed path must charge exactly what the scan would have:
// `unstable_block_scan` per chain block visited (charged during the
// canister's chain walk) and `unstable_utxo_read` per matching output —
// View reports `matched_outputs` and the canister charges it, memo hit or
// miss alike.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bitcoin/block.h"
#include "canister/utxo_index.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"

namespace icbtc::canister {

/// 512-bit bloom-style summary of the scripts a block pays. Two probes per
/// script keep the false-positive rate low for realistic per-block script
/// counts; a negative answer proves the block added nothing for the script,
/// skipping the hash-map lookup entirely.
class ScriptFilter {
 public:
  void add(std::size_t script_hash) {
    for (auto [word, bit] : probes(script_hash)) words_[word] |= bit;
  }
  bool may_contain(std::size_t script_hash) const {
    for (auto [word, bit] : probes(script_hash)) {
      if ((words_[word] & bit) == 0) return false;
    }
    return true;
  }

 private:
  static std::array<std::pair<std::size_t, std::uint64_t>, 2> probes(std::size_t h) {
    // Derive two independent probes from the 64-bit script hash: low bits
    // and a mixed rotation. 512 bits total.
    std::uint64_t h2 = (h >> 17 | h << 47) * 0x9e3779b97f4a7c15ULL;
    return {{{(h >> 6) & 7, 1ULL << (h & 63)}, {(h2 >> 6) & 7, 1ULL << (h2 & 63)}}};
  }

  std::array<std::uint64_t, 8> words_{};
};

/// Everything a query needs to know about one unstable block, computed once
/// at block arrival: outputs grouped by scriptPubKey (in transaction order,
/// OP_RETURN outputs included — the scan path visits and meters them too)
/// and the set of outpoints the block spends.
struct BlockDelta {
  int height = 0;
  std::size_t transactions = 0;
  std::size_t added_outputs = 0;
  ScriptFilter filter;
  std::unordered_map<util::Bytes, std::vector<StoredUtxo>, ScriptHash> added;
  std::unordered_set<bitcoin::OutPoint> spent;
  /// Exact host-side footprint of this delta at build time (computed by
  /// delta_resident_bytes; deterministic).
  std::uint64_t resident_bytes = 0;
};

/// Capacity-accurate host bytes held by a delta, derived from the actual
/// container shapes (bucket arrays, per-node heap blocks, vector and byte
/// buffer capacities). Feeds `canister.delta.resident_bytes`; pinned by
/// tests so the gauge can't silently regress to an estimate.
std::uint64_t delta_resident_bytes(const BlockDelta& delta);

class UnstableIndex {
 public:
  using SpentSet = std::unordered_set<bitcoin::OutPoint>;

  /// A script's assembled unstable view plus the charge counts the canister
  /// must replay against the instruction meter (identical to the scan path).
  struct View {
    std::vector<StoredUtxo> survivors;  // newest first: height desc, outpoint asc
    std::shared_ptr<const SpentSet> spent;  // every outpoint spent by visited blocks
    std::size_t matched_outputs = 0;        // charged unstable_utxo_read each
  };

  /// Builds and stores the delta for `hash`. Txid hashing — the expensive
  /// part — runs on `pool` when one is installed; the merge is serial in
  /// transaction order, so the delta is byte-identical with or without a
  /// pool. Idempotent for a hash already present.
  void add_block(const util::Hash256& hash, const bitcoin::Block& block, int height,
                 parallel::ThreadPool* pool);

  void remove_block(const util::Hash256& hash);

  /// Drops every delta for which keep(hash) is false (anchor advance /
  /// reorg pruning) and invalidates the memo.
  template <typename Keep>
  void prune(Keep&& keep) {
    bool changed = false;
    for (auto it = deltas_.begin(); it != deltas_.end();) {
      if (keep(it->first)) {
        ++it;
      } else {
        resident_bytes_ -= it->second->resident_bytes;
        it = deltas_.erase(it);
        changed = true;
      }
    }
    if (changed) {
      invalidate_memo();
      update_gauges();
    }
  }

  void clear();

  const BlockDelta* delta(const util::Hash256& hash) const {
    auto it = deltas_.find(hash);
    return it == deltas_.end() ? nullptr : it->second.get();
  }

  /// Assembles (and memoizes) the view for `script` over the chain-ordered
  /// delta sequence `deltas` — the anchor-exclusive prefix of the current
  /// chain the canister walked, ending at the block `key`. Two calls with the
  /// same key between invalidations see the same chain prefix, so the memo is
  /// sound; any delta mutation invalidates it. Deterministic.
  View view(const util::Hash256& key, const util::Bytes& script,
            const std::vector<const BlockDelta*>& deltas);

  /// Drops all memoized views and spent-set unions. Called by every delta
  /// mutation (block arrival, anchor advance, reorg pruning).
  void invalidate_memo();

  std::size_t size() const { return deltas_.size(); }
  std::uint64_t resident_bytes() const { return resident_bytes_; }

  /// Attaches a metrics registry (nullptr detaches): `canister.delta.*` —
  /// builds counter, memo hit/miss counters, resident-bytes and block-count
  /// gauges, and a build-duration histogram (only fed when a build clock is
  /// installed, keeping default metric exports deterministic).
  void set_metrics(obs::MetricsRegistry* registry);

  /// Attaches a tracer (nullptr detaches): every delta build emits a
  /// "canister.delta.build" span with height/txs/outputs/spends attributes.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Installs a host wall-clock (µs) for the `canister.delta.build_us`
  /// histogram. Off by default: the metrics JSON export is deterministic by
  /// contract, so wall-clock observation is opt-in (benches, fork_monitor).
  void set_build_clock(std::function<std::uint64_t()> now_us) {
    build_clock_ = std::move(now_us);
  }

 private:
  struct MemoKey {
    util::Hash256 considered;
    util::Bytes script;
    bool operator==(const MemoKey&) const = default;
  };
  struct MemoKeyHash {
    std::size_t operator()(const MemoKey& k) const noexcept {
      return std::hash<util::Hash256>{}(k.considered) * 0x9e3779b97f4a7c15ULL ^
             ScriptHash{}(k.script);
    }
  };

  std::shared_ptr<const SpentSet> spent_union(const util::Hash256& key,
                                              const std::vector<const BlockDelta*>& deltas);
  void update_gauges();

  std::unordered_map<util::Hash256, std::unique_ptr<BlockDelta>> deltas_;
  std::uint64_t resident_bytes_ = 0;

  /// Tip-keyed memo. Bounded: wholesale flush at capacity keeps eviction
  /// deterministic and the bookkeeping trivial.
  static constexpr std::size_t kMemoCapacity = 4096;
  std::unordered_map<MemoKey, View, MemoKeyHash> memo_;
  std::unordered_map<util::Hash256, std::shared_ptr<const SpentSet>> spent_memo_;

  struct Metrics {
    obs::Counter* builds = nullptr;
    obs::Counter* memo_hits = nullptr;
    obs::Counter* memo_misses = nullptr;
    obs::Gauge* resident = nullptr;
    obs::Gauge* blocks = nullptr;
    obs::Histogram* build_us = nullptr;
  };
  Metrics metrics_;
  obs::Tracer* tracer_ = nullptr;
  std::function<std::uint64_t()> build_clock_;
};

}  // namespace icbtc::canister
