#include "canister/unstable_index.h"

#include <algorithm>
#include <utility>

namespace icbtc::canister {

namespace {

/// Heap-block model shared with the persist layer's map accounting: an
/// allocator header plus the payload rounded to 16.
std::uint64_t heap_block(std::size_t payload) {
  return 16 + ((payload + 15) / 16) * 16;
}

}  // namespace

std::uint64_t delta_resident_bytes(const BlockDelta& d) {
  // Capacity-accurate accounting from the actual container shapes: both
  // hash tables' bucket arrays, one heap node per element (payload + next
  // pointer), script byte buffers and UTXO vectors at capacity — not the
  // node-count estimate this replaces. Deterministic for a fixed build
  // history (bucket growth and vector growth are deterministic).
  std::uint64_t bytes = sizeof(BlockDelta);
  bytes += d.added.bucket_count() * sizeof(void*);
  for (const auto& [script, utxos] : d.added) {
    bytes += heap_block(sizeof(util::Bytes) + sizeof(std::vector<StoredUtxo>) + sizeof(void*));
    bytes += heap_block(script.capacity());
    bytes += heap_block(utxos.capacity() * sizeof(StoredUtxo));
  }
  bytes += d.spent.bucket_count() * sizeof(void*);
  bytes += d.spent.size() * heap_block(sizeof(bitcoin::OutPoint) + sizeof(void*));
  return bytes;
}

void UnstableIndex::add_block(const util::Hash256& hash, const bitcoin::Block& block,
                              int height, parallel::ThreadPool* pool) {
  if (deltas_.contains(hash)) return;
  std::uint64_t t0 = build_clock_ ? build_clock_() : 0;
  obs::ScopedSpan span(tracer_, "canister.delta.build", "canister");

  // Warm the memoized txid caches in parallel — sha256d over the wire bytes
  // is the expensive part of delta construction. The merge below is serial
  // in transaction order, so the delta content is pool-invariant.
  const auto& txs = block.transactions;
  parallel::parallel_for(pool, txs.size(), [&](std::size_t i) { (void)txs[i].txid(); });

  auto delta = std::make_unique<BlockDelta>();
  delta->height = height;
  delta->transactions = txs.size();
  for (const auto& tx : txs) {
    if (!tx.is_coinbase()) {
      for (const auto& in : tx.inputs) delta->spent.insert(in.prevout);
    }
    util::Hash256 txid = tx.txid();
    for (std::uint32_t v = 0; v < tx.outputs.size(); ++v) {
      const auto& out = tx.outputs[v];
      auto [it, inserted] = delta->added.try_emplace(out.script_pubkey);
      if (inserted) delta->filter.add(ScriptHash{}(out.script_pubkey));
      it->second.push_back(StoredUtxo{bitcoin::OutPoint{txid, v}, out.value, height});
      ++delta->added_outputs;
    }
  }
  delta->resident_bytes = delta_resident_bytes(*delta);
  resident_bytes_ += delta->resident_bytes;

  if (span.active()) {
    span.attr("height", static_cast<std::int64_t>(height));
    span.attr("txs", static_cast<std::uint64_t>(delta->transactions));
    span.attr("outputs", static_cast<std::uint64_t>(delta->added_outputs));
    span.attr("spends", static_cast<std::uint64_t>(delta->spent.size()));
    span.attr("scripts", static_cast<std::uint64_t>(delta->added.size()));
  }
  deltas_.emplace(hash, std::move(delta));
  invalidate_memo();
  if (metrics_.builds != nullptr) {
    metrics_.builds->inc();
    if (build_clock_) {
      metrics_.build_us->observe(static_cast<double>(build_clock_() - t0));
    }
  }
  update_gauges();
}

void UnstableIndex::remove_block(const util::Hash256& hash) {
  auto it = deltas_.find(hash);
  if (it == deltas_.end()) return;
  resident_bytes_ -= it->second->resident_bytes;
  deltas_.erase(it);
  invalidate_memo();
  update_gauges();
}

void UnstableIndex::clear() {
  deltas_.clear();
  resident_bytes_ = 0;
  invalidate_memo();
  update_gauges();
}

void UnstableIndex::invalidate_memo() {
  memo_.clear();
  spent_memo_.clear();
}

std::shared_ptr<const UnstableIndex::SpentSet> UnstableIndex::spent_union(
    const util::Hash256& key, const std::vector<const BlockDelta*>& deltas) {
  if (auto it = spent_memo_.find(key); it != spent_memo_.end()) return it->second;
  auto merged = std::make_shared<SpentSet>();
  std::size_t total = 0;
  for (const auto* d : deltas) total += d->spent.size();
  merged->reserve(total);
  for (const auto* d : deltas) merged->insert(d->spent.begin(), d->spent.end());
  if (spent_memo_.size() >= kMemoCapacity) spent_memo_.clear();
  spent_memo_.emplace(key, merged);
  return merged;
}

UnstableIndex::View UnstableIndex::view(const util::Hash256& key, const util::Bytes& script,
                                        const std::vector<const BlockDelta*>& deltas) {
  MemoKey memo_key{key, script};
  if (auto it = memo_.find(memo_key); it != memo_.end()) {
    if (metrics_.memo_hits != nullptr) metrics_.memo_hits->inc();
    return it->second;
  }
  if (metrics_.memo_misses != nullptr) metrics_.memo_misses->inc();

  View v;
  v.spent = spent_union(key, deltas);
  std::size_t script_hash = ScriptHash{}(script);
  for (const auto* d : deltas) {
    if (!d->filter.may_contain(script_hash)) continue;
    auto it = d->added.find(script);
    if (it == d->added.end()) continue;
    v.matched_outputs += it->second.size();
    for (const auto& u : it->second) {
      if (!v.spent->contains(u.outpoint)) v.survivors.push_back(u);
    }
  }
  // Newest first, exactly the scan path's order (heights are unique per
  // chain block; outpoints break ties within a block).
  std::sort(v.survivors.begin(), v.survivors.end(), [](const StoredUtxo& a, const StoredUtxo& b) {
    return a.height != b.height ? a.height > b.height : a.outpoint < b.outpoint;
  });
  if (memo_.size() >= kMemoCapacity) memo_.clear();
  memo_.emplace(std::move(memo_key), v);
  return v;
}

void UnstableIndex::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    metrics_ = Metrics{};
    return;
  }
  metrics_.builds = &registry->counter("canister.delta.builds");
  metrics_.memo_hits = &registry->counter("canister.delta.memo_hits");
  metrics_.memo_misses = &registry->counter("canister.delta.memo_misses");
  metrics_.resident = &registry->gauge("canister.delta.resident_bytes");
  metrics_.blocks = &registry->gauge("canister.delta.blocks");
  metrics_.build_us = &registry->histogram("canister.delta.build_us",
                                           obs::Histogram::decade_bounds(1.0, 1e6));
  update_gauges();
}

void UnstableIndex::update_gauges() {
  if (metrics_.resident == nullptr) return;
  metrics_.resident->set(static_cast<std::int64_t>(resident_bytes_));
  metrics_.blocks->set(static_cast<std::int64_t>(deltas_.size()));
}

}  // namespace icbtc::canister
