#include "canister/bitcoin_canister.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "bitcoin/script.h"
#include "parallel/thread_pool.h"
#include "persist/checkpoint.h"
#include "util/byteio.h"

namespace icbtc::canister {

using bitcoin::Block;
using util::Hash256;

namespace {
/// Modelled deterministic execution rate used to convert instruction counts
/// into simulated latency (≈2B instructions per second of replicated
/// execution, the rate behind the paper's §IV-B latency figures).
constexpr double kInstructionsPerMs = 2e6;
constexpr double kInstructionsPerUs = kInstructionsPerMs / 1000.0;
}  // namespace

BitcoinCanister::EndpointCall::EndpointCall(BitcoinCanister& canister, std::string_view name,
                                            const EndpointMetrics& metrics)
    : metrics_(&metrics),
      segment_(canister.meter_),
      span_(canister.tracer_, std::string("canister.") + std::string(name), "canister") {}

BitcoinCanister::EndpointCall::~EndpointCall() {
  double instructions = static_cast<double>(segment_.sample());
  if (span_.active()) {
    // Simulated time stands still while a call executes, so the span ends at
    // its modelled execution latency rather than at now().
    span_.attr("instructions", segment_.sample());
    span_.attr("latency_ms", instructions / kInstructionsPerMs);
    span_.end_at(span_.start() +
                 static_cast<obs::TraceTime>(instructions / kInstructionsPerUs));
  }
  if (metrics_->slo != nullptr) {
    metrics_->slo->record(static_cast<std::uint64_t>(instructions / kInstructionsPerUs));
  }
  if (metrics_->calls == nullptr) return;
  metrics_->calls->inc();
  metrics_->instructions->observe(instructions);
  metrics_->latency_ms->observe(instructions / kInstructionsPerMs);
}

void BitcoinCanister::set_metrics(obs::MetricsRegistry* registry) {
  stable_utxos_.set_metrics(registry);
  unstable_index_.set_metrics(registry);
  if (registry == nullptr) {
    metrics_ = Metrics{};
    resolve_slo_endpoints();  // keep SLO handles across a metrics detach
    return;
  }
  auto endpoint = [registry](const char* name) {
    EndpointMetrics em;
    std::string prefix = std::string("canister.") + name;
    em.calls = &registry->counter(prefix + ".calls");
    em.instructions = &registry->histogram(prefix + ".instructions");
    em.latency_ms = &registry->histogram(prefix + ".latency_ms",
                                         obs::Histogram::decade_bounds(1e-3, 1e6));
    return em;
  };
  metrics_.get_utxos = endpoint("get_utxos");
  metrics_.get_balance = endpoint("get_balance");
  metrics_.send_transaction = endpoint("send_transaction");
  metrics_.fee_percentiles = endpoint("get_current_fee_percentiles");
  metrics_.block_headers = endpoint("get_block_headers");
  metrics_.process_response = endpoint("process_response");
  metrics_.sync_rejections = &registry->counter("canister.sync_rejections");
  metrics_.blocks_stored = &registry->counter("canister.blocks_stored");
  metrics_.headers_appended = &registry->counter("canister.headers_appended");
  metrics_.blocks_ingested = &registry->counter("canister.blocks_ingested");
  metrics_.ingest_instructions = &registry->histogram("canister.ingest.instructions");
  metrics_.anchor_height = &registry->gauge("canister.anchor_height");
  metrics_.tip_height = &registry->gauge("canister.tip_height");
  metrics_.unstable_blocks = &registry->gauge("canister.unstable_blocks");
  metrics_.pending = &registry->gauge("canister.pending_transactions");
  resolve_slo_endpoints();  // set_metrics rebuilt the EndpointMetrics structs
  update_state_gauges();
}

void BitcoinCanister::set_slo(obs::SloTracker* slo) {
  slo_tracker_ = slo;
  resolve_slo_endpoints();
}

void BitcoinCanister::resolve_slo_endpoints() {
  auto ep = [this](const char* name) -> obs::SloTracker::Endpoint* {
    if (slo_tracker_ == nullptr) return nullptr;
    return &slo_tracker_->endpoint(std::string("canister.") + name);
  };
  metrics_.get_utxos.slo = ep("get_utxos");
  metrics_.get_balance.slo = ep("get_balance");
  metrics_.send_transaction.slo = ep("send_transaction");
  metrics_.fee_percentiles.slo = ep("get_current_fee_percentiles");
  metrics_.block_headers.slo = ep("get_block_headers");
  metrics_.process_response.slo = ep("process_response");
}

void BitcoinCanister::update_state_gauges() {
  if (metrics_.anchor_height == nullptr) return;
  metrics_.anchor_height->set(tree_.root().height);
  metrics_.tip_height->set(tree_.best_height());
  metrics_.unstable_blocks->set(static_cast<std::int64_t>(unstable_blocks_.size()));
  metrics_.pending->set(static_cast<std::int64_t>(pending_txs_.size()));
}

bool BitcoinCanister::sync_gate() {
  if (is_synced()) return true;
  if (metrics_.sync_rejections != nullptr) metrics_.sync_rejections->inc();
  return false;
}

const char* to_string(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kNotSynced: return "not synced";
    case Status::kBadAddress: return "bad address";
    case Status::kMinConfirmationsTooLarge: return "min_confirmations too large";
    case Status::kMalformedTransaction: return "malformed transaction";
    case Status::kBadPage: return "bad page token";
    case Status::kBadRange: return "bad height range";
  }
  return "?";
}

BitcoinCanister::BitcoinCanister(const bitcoin::ChainParams& params, CanisterConfig config)
    : params_(&params),
      config_(config),
      stable_utxos_(config.costs,
                    UtxoIndex::ShardConfig{config.utxo_shards, config.utxo_snapshot_reads,
                                           config.utxo_backend}),
      tree_(params, params.genesis_header) {
  // The genesis block's outputs are part of the stable set by definition
  // (the anchor starts at genesis).
  Block genesis = bitcoin::genesis_block(params);
  stable_utxos_.apply_block(genesis, 0, meter_);
  // stable_headers_ archives heights [0, anchor): the outgoing root is
  // pushed on every anchor advance, so genesis lands at index 0 then.
}

adapter::AdapterRequest BitcoinCanister::make_request() {
  adapter::AdapterRequest request;
  request.anchor = tree_.root_hash();
  for (const auto& [hash, block] : unstable_blocks_) request.processed.push_back(hash);
  std::sort(request.processed.begin(), request.processed.end());
  while (!pending_txs_.empty()) {
    request.transactions.push_back(std::move(pending_txs_.front()));
    pending_txs_.pop_front();
  }
  update_state_gauges();
  return request;
}

BitcoinCanister::ProcessResult BitcoinCanister::process_response(
    const adapter::AdapterResponse& response, std::int64_t now_s) {
  EndpointCall call(*this, "process_response", metrics_.process_response);
  meter_.charge(config_.costs.request_overhead);
  ProcessResult result;
  // One owning pool reference for the whole response: fan-outs below stay
  // valid even if another thread replaces the shared pool mid-call.
  std::shared_ptr<parallel::ThreadPool> pool = parallel::shared_pool_ref();

  // Traced txid precompute: with a tracer attached the memoized caches of the
  // incoming blocks are warmed up front — in parallel when the shared pool is
  // installed — so each block's hash work shows up as one task span. Txid
  // memoization makes this behaviour-neutral: the validation below computes
  // the same hashes either way. The TraceTaskGroup pre-allocates span ids on
  // this thread and joins in index order, keeping exports pool-invariant.
  if (tracer_ != nullptr && !response.blocks.empty()) {
    obs::TraceTaskGroup group(tracer_, "canister.precompute_txids", "parallel",
                              response.blocks.size());
    parallel::parallel_for(pool.get(), response.blocks.size(), [&](std::size_t i) {
      const Block& block = response.blocks[i].first;
      for (const auto& tx : block.transactions) (void)tx.txid();
      group.record(i, {{"txs", static_cast<std::uint64_t>(block.transactions.size())}});
    });
    group.join();
  }

  // Lines 1-15: validate and store each block, then try to advance the
  // anchor (possibly repeatedly: one arrival can make several blocks
  // stable).
  for (const auto& [block, header] : response.blocks) {
    // is_valid(b, β): well-formed, Merkle root matches the header. The
    // transactions themselves are NOT validated (§III-C: the canister relies
    // on the proof of work and the Bitcoin network's vetting). Checked
    // before the header is appended: β only enters T if both are valid.
    if (block.hash() != header.hash() || !block.is_well_formed()) continue;
    // is_valid(β, T): same header checks the adapter performs, as a valid
    // extension of T.
    auto accept = tree_.accept(header, now_s);
    if (accept != chain::AcceptResult::kAccepted && accept != chain::AcceptResult::kDuplicate) {
      continue;
    }
    if (unstable_blocks_.contains(header.hash())) continue;

    unstable_blocks_.emplace(header.hash(), block);
    const chain::HeaderTree::Entry* entry = tree_.find(header.hash());
    max_available_height_ = std::max(max_available_height_, entry->height);
    if (indexed_queries()) {
      unstable_index_.add_block(header.hash(), block, entry->height, pool.get());
    }
    ++result.blocks_stored;
    result.anchors_advanced += advance_anchor();
  }

  // Lines 16-20: append validated upcoming headers.
  for (const auto& header : response.next_headers) {
    if (tree_.accept(header, now_s) == chain::AcceptResult::kAccepted) {
      ++result.headers_appended;
    }
  }
  if (metrics_.blocks_stored != nullptr) {
    metrics_.blocks_stored->inc(result.blocks_stored);
    metrics_.headers_appended->inc(result.headers_appended);
  }
  update_state_gauges();
  return result;
}

std::size_t BitcoinCanister::advance_anchor() {
  std::size_t advanced = 0;
  for (;;) {
    const crypto::U256& anchor_work = tree_.root().block_work;  // w(β*)
    int next_height = tree_.root().height + 1;

    // B_next: blocks at height h(β*)+1 whose block data is available.
    Hash256 best;
    crypto::U256 best_depth(0);
    bool found = false;
    for (const auto& candidate : tree_.blocks_at_height(next_height)) {
      if (!unstable_blocks_.contains(candidate)) continue;
      crypto::U256 depth = tree_.depth_work(candidate);
      if (!found || depth > best_depth) {
        best = candidate;
        best_depth = depth;
        found = true;
      }
    }
    if (!found) break;
    if (!tree_.is_difficulty_stable(best, config_.stability_delta, anchor_work)) break;

    // process_block(U, b_next): migrate the block into the stable UTXO set,
    // shard-parallel when the shared pool is installed. The owning pool
    // reference is held across the fan-out so a concurrent set_shared_pool()
    // cannot tear the pool down mid-application (see thread_pool.h).
    auto block_it = unstable_blocks_.find(best);
    const Block& block = block_it->second;
    IngestStats stats;
    stats.height = next_height;
    obs::ScopedSpan ingest_span(tracer_, "canister.ingest_block", "canister");
    std::shared_ptr<parallel::ThreadPool> pool = parallel::shared_pool_ref();
    BlockApplyStats applied = stable_utxos_.apply_block(block, next_height, meter_, pool.get());
    stats.transactions = applied.transactions;
    stats.inputs_removed = applied.inputs_removed;
    stats.outputs_inserted = applied.outputs_inserted;
    stats.instructions = applied.instructions;
    stats.insert_instructions = applied.insert_instructions;
    stats.remove_instructions = applied.remove_instructions;
    stats.critical_path_instructions = applied.critical_path_instructions;
    stats.shards_touched = applied.shards_touched;
    if (ingest_span.active()) {
      ingest_span.attr("height", static_cast<std::int64_t>(stats.height));
      ingest_span.attr("txs", static_cast<std::uint64_t>(stats.transactions));
      ingest_span.attr("inputs_removed", static_cast<std::uint64_t>(stats.inputs_removed));
      ingest_span.attr("outputs_inserted", static_cast<std::uint64_t>(stats.outputs_inserted));
      ingest_span.attr("instructions", stats.instructions);
      ingest_span.attr("shards_touched", static_cast<std::uint64_t>(stats.shards_touched));
      ingest_span.attr("critical_path_instructions", stats.critical_path_instructions);
      ingest_span.end_at(ingest_span.start() +
                         static_cast<obs::TraceTime>(static_cast<double>(stats.instructions) /
                                                     kInstructionsPerUs));
    }
    ingest_log_.push_back(stats);
    if (metrics_.blocks_ingested != nullptr) {
      metrics_.blocks_ingested->inc();
      metrics_.ingest_instructions->observe(static_cast<double>(stats.instructions));
    }

    // The stable block header is archived (headers are kept forever); the
    // block itself is discarded and competing branches are pruned
    // (remove_blocks(T, B_next) — all but the stable header are removed).
    stable_headers_.push_back(tree_.root().header);
    unstable_blocks_.erase(block_it);
    tree_.reroot(best);
    // Drop any unstable blocks whose headers were pruned with their forks.
    std::erase_if(unstable_blocks_,
                  [&](const auto& entry) { return !tree_.contains(entry.first); });
    unstable_index_.prune(
        [&](const util::Hash256& hash) { return unstable_blocks_.contains(hash); });
    recompute_max_available_height();
    ++advanced;
    if (tracer_ != nullptr) {
      tracer_->event(obs::Severity::kInfo, "anchor_advanced",
                     "height " + std::to_string(tree_.root().height));
    }
  }
  return advanced;
}

void BitcoinCanister::recompute_max_available_height() {
  int max_block_height = tree_.root().height;
  for (const auto& [hash, block] : unstable_blocks_) {
    const auto* entry = tree_.find(hash);
    if (entry != nullptr) max_block_height = std::max(max_block_height, entry->height);
  }
  max_available_height_ = max_block_height;
}

bool BitcoinCanister::is_synced() const {
  // max_available_height_ is maintained on block arrival and recomputed when
  // anchor advances or pruning shrink the unstable set, so the sync gate is
  // O(1) instead of a tree_.find per stored block on every call.
  return tree_.max_height() - max_available_height_ <= config_.sync_slack;
}

Outcome<util::Bytes> BitcoinCanister::script_for(const std::string& address) const {
  auto decoded = bitcoin::decode_address(address, params_->network);
  if (!decoded) return {Status::kBadAddress, {}};
  return {Status::kOk, bitcoin::script_for_address(*decoded)};
}

std::pair<Hash256, int> BitcoinCanister::considered_tip(int min_confirmations) const {
  std::vector<Hash256> chain = tree_.current_chain();
  if (min_confirmations <= 0) {
    return {chain.back(), tree_.find(chain.back())->height};
  }
  for (std::size_t i = chain.size(); i-- > 0;) {
    // At most one block per height can be c-stable, and on the current chain
    // stability is monotone towards the root, so the first hit is the tip.
    if (tree_.is_confirmation_stable(chain[i], min_confirmations)) {
      return {chain[i], tree_.find(chain[i])->height};
    }
  }
  // Nothing above the anchor qualifies; answer from the stable state.
  return {tree_.root_hash(), tree_.root().height};
}

struct BitcoinCanister::UnstableView {
  std::vector<Utxo> survivors;  // script's unstable UTXOs, newest first
  /// Every outpoint spent above the anchor (shared with the index's memo on
  /// the indexed path; owned on the scan path).
  std::shared_ptr<const std::unordered_set<bitcoin::OutPoint>> spent;

  bool is_spent(const bitcoin::OutPoint& outpoint) const {
    return spent != nullptr && spent->contains(outpoint);
  }
};

BitcoinCanister::UnstableView BitcoinCanister::unstable_view(const util::Bytes& script,
                                                             int considered_height) {
  return indexed_queries() ? unstable_view_indexed(script, considered_height)
                           : unstable_view_scan(script, considered_height);
}

BitcoinCanister::UnstableView BitcoinCanister::unstable_view_scan(const util::Bytes& script,
                                                                  int considered_height) {
  UnstableView view;
  auto spent = std::make_shared<std::unordered_set<bitcoin::OutPoint>>();
  std::vector<Utxo> unstable_added;

  // Scan the current chain above the anchor up to the considered height,
  // tracking outputs added for the script and all spends.
  std::vector<Hash256> chain = tree_.current_chain();
  for (std::size_t i = 1; i < chain.size(); ++i) {
    const auto* entry = tree_.find(chain[i]);
    if (entry->height > considered_height) break;
    auto block_it = unstable_blocks_.find(chain[i]);
    if (block_it == unstable_blocks_.end()) break;  // cannot see past a gap
    meter_.charge(config_.costs.unstable_block_scan);
    for (const auto& tx : block_it->second.transactions) {
      if (!tx.is_coinbase()) {
        for (const auto& in : tx.inputs) spent->insert(in.prevout);
      }
      Hash256 txid = tx.txid();
      for (std::uint32_t v = 0; v < tx.outputs.size(); ++v) {
        if (tx.outputs[v].script_pubkey != script) continue;
        meter_.charge(config_.costs.unstable_utxo_read);
        unstable_added.push_back(
            Utxo{bitcoin::OutPoint{txid, v}, tx.outputs[v].value, entry->height});
      }
    }
  }

  // Unstable outputs spent by later unstable transactions drop out.
  for (const auto& u : unstable_added) {
    if (!spent->contains(u.outpoint)) view.survivors.push_back(u);
  }
  // Newest first: unstable entries carry the greatest heights.
  std::sort(view.survivors.begin(), view.survivors.end(), [](const Utxo& a, const Utxo& b) {
    return a.height != b.height ? a.height > b.height : a.outpoint < b.outpoint;
  });
  view.spent = std::move(spent);
  return view;
}

BitcoinCanister::UnstableView BitcoinCanister::unstable_view_indexed(const util::Bytes& script,
                                                                     int considered_height) {
  // Chain walk: the same anchor-exclusive prefix the scan visits (stop at
  // the considered height or the first block-data gap), but touching only
  // per-block deltas. `unstable_block_scan` is charged per visited block
  // exactly as the scan charges it.
  std::vector<Hash256> chain = tree_.current_chain();
  std::vector<const BlockDelta*> deltas;
  Hash256 view_key = tree_.root_hash();  // memo key: last visited block
  for (std::size_t i = 1; i < chain.size(); ++i) {
    const auto* entry = tree_.find(chain[i]);
    if (entry->height > considered_height) break;
    const BlockDelta* delta = unstable_index_.delta(chain[i]);
    if (delta == nullptr) break;  // cannot see past a gap
    meter_.charge(config_.costs.unstable_block_scan);
    deltas.push_back(delta);
    view_key = chain[i];
  }

  UnstableIndex::View indexed = unstable_index_.view(view_key, script, deltas);
  // Metering parity: the scan charges one unstable_utxo_read per output
  // paying the script, survivors and spent-again outputs alike.
  meter_.charge(config_.costs.unstable_utxo_read * indexed.matched_outputs);

  UnstableView view;
  view.spent = std::move(indexed.spent);
  view.survivors.reserve(indexed.survivors.size());
  for (const auto& u : indexed.survivors) {
    view.survivors.push_back(Utxo{u.outpoint, u.value, u.height});
  }
  return view;
}

std::vector<Utxo> BitcoinCanister::collect_utxos(const util::Bytes& script,
                                                 int considered_height,
                                                 std::uint64_t stable_read_cost) {
  UnstableView view = unstable_view(script, considered_height);
  std::vector<Utxo> result = std::move(view.survivors);
  // Stable entries are already sorted by height descending.
  for (const auto& stored : stable_utxos_.utxos_for_script(script, meter_, stable_read_cost)) {
    if (view.is_spent(stored.outpoint)) continue;  // spent by an unstable tx
    result.push_back(Utxo{stored.outpoint, stored.value, stored.height});
  }
  return result;
}

std::size_t BitcoinCanister::collect_utxos_page(const util::Bytes& script, int considered_height,
                                                std::size_t offset, std::size_t limit,
                                                std::vector<Utxo>& out) {
  UnstableView view = unstable_view(script, considered_height);
  const std::size_t unstable_total = view.survivors.size();
  for (std::size_t i = offset; i < unstable_total && out.size() < limit; ++i) {
    out.push_back(view.survivors[i]);
  }
  // Single ordered walk of the stable list: the spent filter is applied
  // before ranking, so page boundaries line up with the unpaged view, and
  // only appended entries are metered.
  std::size_t stable_offset = offset > unstable_total ? offset - unstable_total : 0;
  std::vector<StoredUtxo> stable_page;
  std::size_t stable_total = stable_utxos_.utxos_for_script_paged(
      script, meter_, stable_offset, limit - out.size(), stable_page,
      [&](const bitcoin::OutPoint& op) { return !view.is_spent(op); });
  for (const auto& s : stable_page) out.push_back(Utxo{s.outpoint, s.value, s.height});
  return unstable_total + stable_total;
}

Outcome<GetUtxosResponse> BitcoinCanister::get_utxos(const GetUtxosRequest& request) {
  EndpointCall call(*this, "get_utxos", metrics_.get_utxos);
  if (!sync_gate()) return {Status::kNotSynced, {}};
  if (request.min_confirmations > config_.stability_delta) {
    // Responses could be missing outputs spent below the anchor (§III-C).
    return {Status::kMinConfirmationsTooLarge, {}};
  }
  auto script = script_for(request.address);
  if (!script.ok()) return {script.status, {}};

  auto [tip_hash, tip_height] = considered_tip(request.min_confirmations);

  // The page token (opaque to clients) binds the offset to the considered
  // tip: [tip hash (32)][offset (8 LE)]. A raw offset alone is unsound —
  // when a block arrives or a reorg happens between pages, offsets into the
  // rebuilt UTXO list shift and clients silently see duplicated or skipped
  // UTXOs. A token minted against a different tip is rejected instead.
  std::size_t offset = 0;
  if (request.page) {
    if (request.page->size() != 40) return {Status::kBadPage, {}};
    util::ByteReader r(*request.page);
    Hash256 page_tip = r.hash256();
    offset = static_cast<std::size_t>(r.u64le());
    if (page_tip != tip_hash) return {Status::kBadPage, {}};
  }

  GetUtxosResponse response;
  response.tip_hash = tip_hash;
  response.tip_height = tip_height;
  std::size_t total =
      collect_utxos_page(script.value, tip_height, offset, config_.utxos_per_page, response.utxos);
  if (offset > total) return {Status::kBadPage, {}};

  std::size_t end = offset + response.utxos.size();
  if (end < total) {
    util::ByteWriter w;
    w.bytes(tip_hash.span());
    w.u64le(end);
    response.next_page = std::move(w).take();
  }
  return {Status::kOk, std::move(response)};
}

Outcome<bitcoin::Amount> BitcoinCanister::get_balance(const std::string& address,
                                                      int min_confirmations) {
  EndpointCall call(*this, "get_balance", metrics_.get_balance);
  if (!sync_gate()) return {Status::kNotSynced, {}};
  if (min_confirmations > config_.stability_delta) {
    return {Status::kMinConfirmationsTooLarge, {}};
  }
  auto script = script_for(address);
  if (!script.ok()) return {script.status, {}};
  auto [tip_hash, tip_height] = considered_tip(min_confirmations);
  (void)tip_hash;
  bitcoin::Amount total = 0;
  for (const auto& u :
       collect_utxos(script.value, tip_height, config_.costs.stable_balance_read)) {
    total += u.value;
  }
  return {Status::kOk, total};
}

Status BitcoinCanister::send_transaction(const util::Bytes& raw_transaction) {
  EndpointCall call(*this, "send_transaction", metrics_.send_transaction);
  // Basic syntactic checks only (§III-C): decodable and well-formed.
  try {
    bitcoin::Transaction tx = bitcoin::Transaction::parse(raw_transaction);
    if (!tx.is_well_formed() || tx.is_coinbase()) return Status::kMalformedTransaction;
  } catch (const util::DecodeError&) {
    return Status::kMalformedTransaction;
  }
  pending_txs_.push_back(raw_transaction);
  if (metrics_.pending != nullptr) {
    metrics_.pending->set(static_cast<std::int64_t>(pending_txs_.size()));
  }
  return Status::kOk;
}

Outcome<std::vector<std::uint64_t>> BitcoinCanister::get_current_fee_percentiles() {
  EndpointCall call(*this, "get_current_fee_percentiles", metrics_.fee_percentiles);
  if (!sync_gate()) return {Status::kNotSynced, {}};
  // Scan the unstable suffix of the current chain. Outputs created earlier
  // in the window (or in the stable set) resolve input values; transactions
  // with unresolvable inputs are skipped, as in the production canister.
  std::vector<util::Hash256> chain = tree_.current_chain();
  std::size_t first =
      chain.size() > static_cast<std::size_t>(config_.fee_window_blocks)
          ? chain.size() - static_cast<std::size_t>(config_.fee_window_blocks)
          : 1;  // skip the anchor itself (its block is discarded)
  std::unordered_map<bitcoin::OutPoint, bitcoin::Amount> window_outputs;
  // Pre-scan the entire unstable chain so spends of younger-but-out-of-window
  // outputs still resolve.
  for (std::size_t i = 1; i < chain.size(); ++i) {
    auto it = unstable_blocks_.find(chain[i]);
    if (it == unstable_blocks_.end()) continue;
    for (const auto& tx : it->second.transactions) {
      util::Hash256 txid = tx.txid();
      for (std::uint32_t v = 0; v < tx.outputs.size(); ++v) {
        window_outputs[bitcoin::OutPoint{txid, v}] = tx.outputs[v].value;
      }
    }
  }

  std::vector<double> fee_rates;  // millisatoshi per vbyte
  for (std::size_t i = first; i < chain.size(); ++i) {
    auto it = unstable_blocks_.find(chain[i]);
    if (it == unstable_blocks_.end()) continue;
    meter_.charge(config_.costs.unstable_block_scan);
    for (const auto& tx : it->second.transactions) {
      if (tx.is_coinbase()) continue;
      bitcoin::Amount in_value = 0;
      bool resolved = true;
      for (const auto& in : tx.inputs) {
        if (auto w = window_outputs.find(in.prevout); w != window_outputs.end()) {
          in_value += w->second;
        } else if (auto stable = stable_utxos_.find(in.prevout)) {
          in_value += stable->value;
        } else {
          resolved = false;
          break;
        }
      }
      if (!resolved) continue;
      bitcoin::Amount fee = in_value - tx.total_output_value();
      if (fee < 0) continue;  // nonsensical (unvalidated) transaction
      double vbytes = static_cast<double>(tx.size());
      fee_rates.push_back(static_cast<double>(fee) * 1000.0 / vbytes);
      meter_.charge(config_.costs.per_tx_overhead);
    }
  }
  if (fee_rates.empty()) return {Status::kOk, {}};
  std::sort(fee_rates.begin(), fee_rates.end());
  std::vector<std::uint64_t> percentiles;
  percentiles.reserve(101);
  for (int p = 0; p <= 100; ++p) {
    double rank = static_cast<double>(p) / 100.0 * static_cast<double>(fee_rates.size() - 1);
    // Nearest-rank: truncating the fractional rank would bias every
    // non-endpoint percentile towards the lower sample.
    auto index = std::min(static_cast<std::size_t>(std::llround(rank)), fee_rates.size() - 1);
    percentiles.push_back(static_cast<std::uint64_t>(fee_rates[index]));
  }
  return {Status::kOk, std::move(percentiles)};
}

Outcome<BitcoinCanister::GetBlockHeadersResponse> BitcoinCanister::get_block_headers(
    int start_height, int end_height) {
  EndpointCall call(*this, "get_block_headers", metrics_.block_headers);
  if (!sync_gate()) return {Status::kNotSynced, {}};
  int tip = tree_.best_height();
  if (end_height < 0) end_height = tip;
  if (start_height < 0 || start_height > end_height || end_height > tip) {
    return {Status::kBadRange, {}};
  }
  GetBlockHeadersResponse response;
  response.tip_height = tip;
  int anchor = tree_.root().height;
  // stable_headers_ archives heights 0..anchor-1; the anchor itself is the
  // tree root; heights above come from the current chain.
  std::vector<util::Hash256> chain = tree_.current_chain();
  for (int h = start_height; h <= end_height; ++h) {
    meter_.charge(config_.costs.unstable_utxo_read);
    if (h < anchor) {
      response.headers.push_back(stable_headers_.at(static_cast<std::size_t>(h)));
    } else {
      response.headers.push_back(
          tree_.find(chain.at(static_cast<std::size_t>(h - anchor)))->header);
    }
  }
  return {Status::kOk, std::move(response)};
}

namespace {
constexpr std::uint32_t kSnapshotMagic = 0x69636263;  // "icbc"
constexpr std::uint32_t kSnapshotVersion = 1;
}  // namespace

util::Bytes BitcoinCanister::serialize_state() const {
  util::ByteWriter w;
  w.u32le(kSnapshotMagic);
  w.u32le(kSnapshotVersion);

  // Header tree: root (height + prev cumulative work), then every other
  // header in height order (parents always precede children).
  const auto& root = tree_.root();
  w.i32le(root.height);
  crypto::U256 prev_work = root.cumulative_work - root.block_work;
  w.bytes(prev_work.to_be_bytes().span());
  root.header.serialize(w);
  std::vector<bitcoin::BlockHeader> headers;
  for (int h = root.height + 1; h <= tree_.max_height(); ++h) {
    for (const auto& hash : tree_.blocks_at_height(h)) {
      headers.push_back(tree_.find(hash)->header);
    }
  }
  w.varint(headers.size());
  for (const auto& header : headers) header.serialize(w);

  w.varint(unstable_blocks_.size());
  for (const auto& [hash, block] : unstable_blocks_) w.var_bytes(block.serialize());

  w.varint(stable_headers_.size());
  for (const auto& header : stable_headers_) header.serialize(w);

  w.varint(stable_utxos_.size());
  stable_utxos_.visit([&](const bitcoin::OutPoint& outpoint, bitcoin::Amount value, int height,
                          util::ByteSpan script) {
    outpoint.serialize(w);
    w.i64le(value);
    w.var_bytes(script);
    w.i32le(height);
  });

  w.varint(pending_txs_.size());
  for (const auto& raw : pending_txs_) w.var_bytes(raw);

  return std::move(w).take();
}

BitcoinCanister BitcoinCanister::from_snapshot(const bitcoin::ChainParams& params,
                                               CanisterConfig config, util::ByteSpan snapshot) {
  util::ByteReader r(snapshot);
  if (r.u32le() != kSnapshotMagic) throw util::DecodeError("snapshot: bad magic");
  if (r.u32le() != kSnapshotVersion) throw util::DecodeError("snapshot: unsupported version");

  BitcoinCanister canister(params, config);

  int root_height = r.i32le();
  crypto::U256 prev_work = crypto::U256::from_be_bytes(r.bytes(32));
  bitcoin::BlockHeader root = bitcoin::BlockHeader::deserialize(r);
  canister.stable_utxos_ =
      UtxoIndex(config.costs,
                UtxoIndex::ShardConfig{config.utxo_shards, config.utxo_snapshot_reads,
                                       config.utxo_backend});  // drop the genesis seed
  canister.tree_ = chain::HeaderTree(params, root, root_height, prev_work);

  // The stored headers were fully validated before the snapshot was taken;
  // only structural linkage matters on restore.
  chain::ValidationOptions lax;
  lax.check_pow = false;
  lax.check_difficulty = false;
  lax.check_timestamp = false;
  std::size_t n_headers = r.checked_len(r.varint());
  for (std::size_t i = 0; i < n_headers; ++i) {
    bitcoin::BlockHeader header = bitcoin::BlockHeader::deserialize(r);
    if (canister.tree_.accept(header, 0, nullptr, lax) != chain::AcceptResult::kAccepted) {
      throw util::DecodeError("snapshot: orphan header");
    }
  }

  std::size_t n_blocks = r.checked_len(r.varint());
  for (std::size_t i = 0; i < n_blocks; ++i) {
    bitcoin::Block block = bitcoin::Block::parse(r.var_bytes());
    util::Hash256 hash = block.hash();
    if (!canister.tree_.contains(hash)) throw util::DecodeError("snapshot: stray block");
    if (canister.indexed_queries()) {
      std::shared_ptr<parallel::ThreadPool> pool = parallel::shared_pool_ref();
      canister.unstable_index_.add_block(hash, block, canister.tree_.find(hash)->height,
                                         pool.get());
    }
    canister.unstable_blocks_.emplace(hash, std::move(block));
  }
  canister.recompute_max_available_height();

  canister.stable_headers_.clear();
  std::size_t n_archived = r.checked_len(r.varint());
  canister.stable_headers_.reserve(n_archived);
  for (std::size_t i = 0; i < n_archived; ++i) {
    canister.stable_headers_.push_back(bitcoin::BlockHeader::deserialize(r));
  }

  std::size_t n_utxos = r.checked_len(r.varint());
  for (std::size_t i = 0; i < n_utxos; ++i) {
    bitcoin::OutPoint outpoint = bitcoin::OutPoint::deserialize(r);
    bitcoin::Amount value = r.i64le();
    util::Bytes script = r.var_bytes();
    int height = r.i32le();
    canister.stable_utxos_.load_entry(outpoint, value, height, script);
  }
  canister.stable_utxos_.finish_load();

  std::size_t n_pending = r.checked_len(r.varint());
  for (std::size_t i = 0; i < n_pending; ++i) canister.pending_txs_.push_back(r.var_bytes());

  if (!r.done()) throw util::DecodeError("snapshot: trailing bytes");
  return canister;
}

namespace {
// Checkpoint section ids (persist envelope; strictly increasing on the wire).
constexpr std::uint32_t kSecMeta = 1;            // anchor: height, prev work, root header
constexpr std::uint32_t kSecHeaders = 2;         // unstable headers, parents first
constexpr std::uint32_t kSecUnstableBlocks = 3;  // full blocks, sorted by hash
constexpr std::uint32_t kSecStableHeaders = 4;   // archived headers below the anchor
constexpr std::uint32_t kSecUtxos = 5;           // stable set, sorted by outpoint
constexpr std::uint32_t kSecPending = 6;         // outbound tx queue, queue order
constexpr std::uint32_t kSecMeter = 7;           // lifetime instruction total
}  // namespace

util::Bytes BitcoinCanister::write_checkpoint() const {
  persist::CheckpointWriter cw;
  {
    util::ByteWriter& w = cw.begin_section(kSecMeta);
    const auto& root = tree_.root();
    w.i32le(root.height);
    crypto::U256 prev_work = root.cumulative_work - root.block_work;
    w.bytes(prev_work.to_be_bytes().span());
    root.header.serialize(w);
  }
  {
    // Height order keeps parents before children; within a height the hashes
    // are sorted so the bytes do not depend on ingestion interleaving.
    util::ByteWriter& w = cw.begin_section(kSecHeaders);
    std::vector<bitcoin::BlockHeader> headers;
    for (int h = tree_.root().height + 1; h <= tree_.max_height(); ++h) {
      std::vector<Hash256> at_height = tree_.blocks_at_height(h);
      std::sort(at_height.begin(), at_height.end());
      for (const auto& hash : at_height) headers.push_back(tree_.find(hash)->header);
    }
    w.varint(headers.size());
    for (const auto& header : headers) header.serialize(w);
  }
  {
    util::ByteWriter& w = cw.begin_section(kSecUnstableBlocks);
    std::vector<Hash256> hashes;
    hashes.reserve(unstable_blocks_.size());
    for (const auto& [hash, block] : unstable_blocks_) hashes.push_back(hash);
    std::sort(hashes.begin(), hashes.end());
    w.varint(hashes.size());
    for (const auto& hash : hashes) w.var_bytes(unstable_blocks_.at(hash).serialize());
  }
  {
    util::ByteWriter& w = cw.begin_section(kSecStableHeaders);
    w.varint(stable_headers_.size());
    for (const auto& header : stable_headers_) header.serialize(w);
  }
  {
    // Globally sorted by outpoint: the section bytes are invariant under the
    // writer's shard count, backend, and snapshot mode. Script bytes are
    // copied out because shard pins only live for the duration of visit().
    util::ByteWriter& w = cw.begin_section(kSecUtxos);
    struct Row {
      bitcoin::OutPoint outpoint;
      bitcoin::Amount value;
      int height;
      util::Bytes script;
    };
    std::vector<Row> rows;
    rows.reserve(stable_utxos_.size());
    stable_utxos_.visit([&](const bitcoin::OutPoint& outpoint, bitcoin::Amount value, int height,
                            util::ByteSpan script) {
      rows.push_back(Row{outpoint, value, height, util::Bytes(script.begin(), script.end())});
    });
    std::sort(rows.begin(), rows.end(),
              [](const Row& a, const Row& b) { return a.outpoint < b.outpoint; });
    w.u64le(rows.size());
    for (const Row& row : rows) {
      row.outpoint.serialize(w);
      w.i64le(row.value);
      w.i32le(row.height);
      w.var_bytes(row.script);
    }
  }
  {
    util::ByteWriter& w = cw.begin_section(kSecPending);
    w.varint(pending_txs_.size());
    for (const auto& raw : pending_txs_) w.var_bytes(raw);
  }
  {
    util::ByteWriter& w = cw.begin_section(kSecMeter);
    w.u64le(meter_.count());
  }
  return std::move(cw).finish();
}

BitcoinCanister BitcoinCanister::from_checkpoint(const bitcoin::ChainParams& params,
                                                 CanisterConfig config,
                                                 util::ByteSpan checkpoint) {
  using Code = persist::CheckpointError::Code;
  persist::CheckpointReader reader(checkpoint);  // validates envelope + every CRC

  // Section payloads decode with ByteReader, which throws util::DecodeError
  // on any truncation/malformation; wrap so callers always see the typed
  // error, and build into a fresh canister so a failure can never leave a
  // partially restored one behind.
  try {
    BitcoinCanister canister(params, config);

    {
      util::ByteReader r = reader.section(kSecMeta);
      int root_height = r.i32le();
      crypto::U256 prev_work = crypto::U256::from_be_bytes(r.bytes(32));
      bitcoin::BlockHeader root = bitcoin::BlockHeader::deserialize(r);
      if (!r.done()) throw util::DecodeError("meta trailing bytes");
      canister.stable_utxos_ =
          UtxoIndex(config.costs, UtxoIndex::ShardConfig{config.utxo_shards,
                                                         config.utxo_snapshot_reads,
                                                         config.utxo_backend});
      canister.tree_ = chain::HeaderTree(params, root, root_height, prev_work);
    }

    // Headers were fully validated before the checkpoint was written; only
    // structural linkage matters on restore.
    chain::ValidationOptions lax;
    lax.check_pow = false;
    lax.check_difficulty = false;
    lax.check_timestamp = false;
    {
      util::ByteReader r = reader.section(kSecHeaders);
      std::size_t n = r.checked_len(r.varint());
      for (std::size_t i = 0; i < n; ++i) {
        bitcoin::BlockHeader header = bitcoin::BlockHeader::deserialize(r);
        if (canister.tree_.accept(header, 0, nullptr, lax) != chain::AcceptResult::kAccepted) {
          throw util::DecodeError("orphan header");
        }
      }
      if (!r.done()) throw util::DecodeError("headers trailing bytes");
    }

    {
      util::ByteReader r = reader.section(kSecUnstableBlocks);
      std::size_t n = r.checked_len(r.varint());
      for (std::size_t i = 0; i < n; ++i) {
        bitcoin::Block block = bitcoin::Block::parse(r.var_bytes());
        Hash256 hash = block.hash();
        if (!canister.tree_.contains(hash)) throw util::DecodeError("stray block");
        if (canister.indexed_queries()) {
          std::shared_ptr<parallel::ThreadPool> pool = parallel::shared_pool_ref();
          canister.unstable_index_.add_block(hash, block, canister.tree_.find(hash)->height,
                                             pool.get());
        }
        canister.unstable_blocks_.emplace(hash, std::move(block));
      }
      if (!r.done()) throw util::DecodeError("blocks trailing bytes");
      canister.recompute_max_available_height();
    }

    {
      util::ByteReader r = reader.section(kSecStableHeaders);
      std::size_t n = r.checked_len(r.varint());
      canister.stable_headers_.clear();
      canister.stable_headers_.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        canister.stable_headers_.push_back(bitcoin::BlockHeader::deserialize(r));
      }
      if (!r.done()) throw util::DecodeError("stable headers trailing bytes");
    }

    {
      util::ByteReader r = reader.section(kSecUtxos);
      std::uint64_t n = r.u64le();
      for (std::uint64_t i = 0; i < n; ++i) {
        bitcoin::OutPoint outpoint = bitcoin::OutPoint::deserialize(r);
        bitcoin::Amount value = r.i64le();
        int height = r.i32le();
        util::Bytes script = r.var_bytes();
        canister.stable_utxos_.load_entry(outpoint, value, height, script);
      }
      if (!r.done()) throw util::DecodeError("utxo trailing bytes");
      canister.stable_utxos_.finish_load();
    }

    {
      util::ByteReader r = reader.section(kSecPending);
      std::size_t n = r.checked_len(r.varint());
      canister.pending_txs_.clear();
      for (std::size_t i = 0; i < n; ++i) canister.pending_txs_.push_back(r.var_bytes());
      if (!r.done()) throw util::DecodeError("pending trailing bytes");
    }

    {
      util::ByteReader r = reader.section(kSecMeter);
      std::uint64_t total = r.u64le();
      if (!r.done()) throw util::DecodeError("meter trailing bytes");
      // The writer's lifetime total subsumes everything this constructor
      // charged (genesis seeding); replaying it keeps the restored canister's
      // meter bit-identical to a never-stopped twin.
      canister.meter_.reset();
      canister.meter_.charge(total);
    }

    return canister;
  } catch (const persist::CheckpointError&) {
    throw;
  } catch (const util::DecodeError& e) {
    throw persist::CheckpointError(Code::kMalformed, e.what());
  }
}

void BitcoinCanister::checkpoint(const std::string& path) const {
  persist::write_checkpoint_file(path, write_checkpoint());
}

BitcoinCanister BitcoinCanister::restore(const bitcoin::ChainParams& params,
                                         CanisterConfig config, const std::string& path) {
  util::Bytes bytes = persist::read_checkpoint_file(path);
  return from_checkpoint(params, config, bytes);
}

std::uint64_t BitcoinCanister::memory_bytes() const {
  std::uint64_t unstable = 0;
  for (const auto& [hash, block] : unstable_blocks_) unstable += block.size();
  return stable_utxos_.memory_bytes() + unstable + 81 * (stable_headers_.size() + tree_.size());
}

}  // namespace icbtc::canister
