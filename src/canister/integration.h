// Wires the full architecture of Fig. 4 together: one Bitcoin adapter per IC
// replica (each with its own random connections into the Bitcoin network),
// the Bitcoin canister executing on the subnet, and the consensus-mediated
// request/response loop: each round, the canister's update request is
// answered by the *block maker's* adapter — a Byzantine maker may substitute
// an arbitrary (but block-valid) response, which is exactly the attack
// surface analysed in §IV-A (Lemma IV.3).
#pragma once

#include <functional>
#include <memory>

#include "adapter/adapter.h"
#include "canister/bitcoin_canister.h"
#include "ic/subnet.h"

namespace icbtc::canister {

struct IntegrationConfig {
  adapter::AdapterConfig adapter;
  CanisterConfig canister;
  /// The canister requests adapter updates every this many rounds.
  std::uint64_t request_every_rounds = 2;
};

/// A call measurement: what the caller observed.
template <typename T>
struct CallResult {
  T outcome;
  util::SimTime latency = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  std::size_t response_bytes = 0;
};

class BitcoinIntegration {
 public:
  /// Overrides the response the canister sees when a Byzantine replica is
  /// block maker. Returning nullopt falls through to that replica's adapter
  /// (which the simulation models as honest hardware running corrupt logic:
  /// the attacker substitutes payloads, not the networking stack).
  using ByzantineResponseProvider =
      std::function<std::optional<adapter::AdapterResponse>(const adapter::AdapterRequest&,
                                                            const ic::RoundInfo&)>;

  BitcoinIntegration(ic::Subnet& subnet, btcnet::Network& bitcoin_network,
                     const bitcoin::ChainParams& params, IntegrationConfig config,
                     std::uint64_t seed);
  ~BitcoinIntegration();

  BitcoinIntegration(const BitcoinIntegration&) = delete;
  BitcoinIntegration& operator=(const BitcoinIntegration&) = delete;

  BitcoinCanister& canister() { return canister_; }
  ic::Subnet& subnet() { return *subnet_; }
  adapter::BitcoinAdapter& adapter_of(std::uint32_t replica) { return *adapters_.at(replica); }
  std::size_t num_adapters() const { return adapters_.size(); }

  /// Starts all adapters and hooks the request loop into subnet rounds.
  void start();
  void stop();

  /// Attaches a tracer to the whole integration (nullptr detaches): the
  /// canister, every adapter, and this layer's own spans — an
  /// "ic.round_request" span per consensus round-trip and one root
  /// "request.<endpoint>" span per client call. Each client call also
  /// records a RequestCostRecord (a Fig. 7 data point) binding its sim-time
  /// latency, metered instructions, response bytes, and cycle cost. The
  /// caller is responsible for installing a clock on the tracer (normally
  /// the subnet's simulation time).
  void set_tracer(obs::Tracer* tracer);

  /// Attaches an SLO tracker to the whole integration (nullptr detaches):
  /// the canister's per-endpoint latencies, every adapter's handle_request,
  /// and the subnet's round-dispatch cadence all land in one tracker —
  /// fan-in across replicas is exact because the underlying histograms have
  /// fixed bucket boundaries.
  void set_slo(obs::SloTracker* slo);

  void set_byzantine_response_provider(ByzantineResponseProvider provider) {
    byzantine_provider_ = std::move(provider);
  }

  /// Pauses/resumes the canister's request loop (models canister downtime,
  /// the precondition of the Lemma IV.3 attack).
  void set_canister_down(bool down) { canister_down_ = down; }
  bool canister_down() const { return canister_down_; }

  // ---- Client-side calls with the paper's latency & cost models ----

  CallResult<Outcome<GetUtxosResponse>> replicated_get_utxos(const GetUtxosRequest& request);
  CallResult<Outcome<GetUtxosResponse>> query_get_utxos(const GetUtxosRequest& request);
  CallResult<Outcome<bitcoin::Amount>> replicated_get_balance(const std::string& address,
                                                              int min_confirmations = 0);
  CallResult<Outcome<bitcoin::Amount>> query_get_balance(const std::string& address,
                                                         int min_confirmations = 0);
  CallResult<Status> replicated_send_transaction(const util::Bytes& raw_tx);

  std::uint64_t requests_made() const { return requests_made_; }

 private:
  void on_round(const ic::RoundInfo& info);
  static std::size_t utxos_response_bytes(const Outcome<GetUtxosResponse>& outcome);

  ic::Subnet* subnet_;
  btcnet::Network* bitcoin_network_;
  IntegrationConfig config_;
  BitcoinCanister canister_;
  std::vector<std::unique_ptr<adapter::BitcoinAdapter>> adapters_;
  ByzantineResponseProvider byzantine_provider_;
  obs::Tracer* tracer_ = nullptr;
  std::size_t heartbeat_id_ = 0;
  bool running_ = false;
  bool canister_down_ = false;
  std::uint64_t requests_made_ = 0;
};

}  // namespace icbtc::canister
