#include "canister/utxo_index.h"

#include <algorithm>
#include <cstring>
#include <thread>
#include <utility>

#include "bitcoin/script.h"
#include "crypto/sha256.h"

namespace icbtc::canister {

namespace {
/// Modelled deterministic execution rate (2e9 instructions/s, the §IV-B
/// convention shared with BitcoinCanister's endpoint spans).
constexpr double kInstructionsPerUs = 2000.0;
constexpr std::size_t kUnrouted = static_cast<std::size_t>(-1);
}  // namespace

std::size_t ScriptHash::operator()(const util::Bytes& b) const noexcept {
  // FNV-1a folded over 64-bit words with the length mixed into the seed, so
  // prefixes of different lengths cannot collide trivially. The zero-padded
  // tail load is safe because the length disambiguates it.
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  std::uint64_t h = 14695981039346656037ULL ^ (static_cast<std::uint64_t>(b.size()) * kPrime);
  const std::uint8_t* p = b.data();
  std::size_t n = b.size();
  while (n >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    h = (h ^ word) * kPrime;
    p += 8;
    n -= 8;
  }
  if (n > 0) {
    std::uint64_t tail = 0;
    std::memcpy(&tail, p, n);
    h = (h ^ tail) * kPrime;
  }
  // Finalizer: FNV's multiply mixes upward only; fold the high bits back so
  // the table's low-bit bucket selection sees the whole word.
  h ^= h >> 32;
  return h;
}

std::uint64_t stable_script_shard_hash(util::ByteSpan script) noexcept {
  // Canonical byte-at-a-time FNV-1a 64: every host folds the same byte
  // sequence the same way, so shard assignment is identical across
  // endianness, word size, and process restarts. Pinned by known-answer
  // tests (utxo_shard_test); the in-memory ScriptHash above is free to
  // change, this function is part of the (future) checkpoint format.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint8_t byte : script) {
    h ^= byte;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t UtxoIndex::entry_footprint(std::size_t script_len) {
  // Payload (outpoint 36 + value 8 + height 4 + script) plus the stable
  // B-tree node overhead (fixed-width keys, slack, versioning) of the
  // production canister's stable structures, stored in both the outpoint
  // index and the address index. Calibrated against the paper's Fig. 5:
  // ~103 GiB for ~170M UTXOs ≈ 600 bytes per UTXO.
  constexpr std::uint64_t kStableBTreeOverhead = 220;
  return 2 * (kStableBTreeOverhead + 36 + 8 + 4 + script_len);
}

UtxoIndex::UtxoIndex(InstructionCosts costs) : UtxoIndex(costs, ShardConfig{}) {}

UtxoIndex::UtxoIndex(InstructionCosts costs, ShardConfig shard_config)
    : costs_(costs), shard_config_(shard_config) {
  if (shard_config_.shards == 0) shard_config_.shards = 1;
  shards_.reserve(shard_config_.shards);
  for (std::size_t s = 0; s < shard_config_.shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->front = std::make_shared<ShardData>(shard_config_.backend);
    if (shard_config_.snapshot_reads) {
      shard->back = std::make_shared<ShardData>(shard_config_.backend);
    }
    shards_.push_back(std::move(shard));
  }
}

// Moves are for value-semantics plumbing (from_snapshot reassigns the store,
// BitcoinCanister is returned by value); the source must be quiescent. The
// epoch atomic is copied by value and the source is left holding one fresh
// empty shard so its invariants (shards_.size() >= 1) survive.
UtxoIndex::UtxoIndex(UtxoIndex&& other) noexcept
    : costs_(other.costs_),
      shard_config_(other.shard_config_),
      shards_(std::move(other.shards_)),
      metrics_(other.metrics_),
      tracer_(other.tracer_) {
  epoch_seq_.store(other.epoch_seq_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  other.shards_.clear();
  auto fresh = std::make_unique<Shard>();
  fresh->front = std::make_shared<ShardData>(other.shard_config_.backend);
  if (other.shard_config_.snapshot_reads) {
    fresh->back = std::make_shared<ShardData>(other.shard_config_.backend);
  }
  other.shards_.push_back(std::move(fresh));
}

UtxoIndex& UtxoIndex::operator=(UtxoIndex&& other) noexcept {
  if (this == &other) return *this;
  costs_ = other.costs_;
  shard_config_ = other.shard_config_;
  shards_ = std::move(other.shards_);
  metrics_ = other.metrics_;
  tracer_ = other.tracer_;
  epoch_seq_.store(other.epoch_seq_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  other.shards_.clear();
  auto fresh = std::make_unique<Shard>();
  fresh->front = std::make_shared<ShardData>(other.shard_config_.backend);
  if (other.shard_config_.snapshot_reads) {
    fresh->back = std::make_shared<ShardData>(other.shard_config_.backend);
  }
  other.shards_.push_back(std::move(fresh));
  return *this;
}

UtxoIndex::Pinned UtxoIndex::pin_shard(std::size_t shard) const {
  const Shard& s = *shards_[shard];
  // The pin count must be registered while the mutex is held: publish() also
  // swaps under this mutex, so once the lock is released the writer either
  // saw the pin (and waits in catch_up) or the reader got the new front.
  std::lock_guard<std::mutex> lock(s.mu);
  return Pinned(s.front);
}

void UtxoIndex::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    metrics_ = Metrics{};
    return;
  }
  metrics_.inserts = &registry->counter("utxo.inserts");
  metrics_.removes = &registry->counter("utxo.removes");
  metrics_.size = &registry->gauge("utxo.size");
  metrics_.memory = &registry->gauge("utxo.memory_bytes");
  metrics_.shard_count = &registry->gauge("utxo.shard.count");
  metrics_.shard_epoch = &registry->gauge("utxo.shard.epoch");
  metrics_.shard_max_utxos = &registry->gauge("utxo.shard.max_utxos");
  metrics_.shard_min_utxos = &registry->gauge("utxo.shard.min_utxos");
  metrics_.shard_live_bytes = &registry->gauge("utxo.shard.live_bytes");
  metrics_.shard_resident_bytes = &registry->gauge("utxo.shard.resident_bytes");
  update_size_gauges();
}

void UtxoIndex::update_size_gauges() {
  if (metrics_.size == nullptr) return;
  std::size_t total = 0;
  std::uint64_t memory = 0;
  std::uint64_t live = 0;
  std::uint64_t resident = 0;
  std::size_t max_shard = 0;
  std::size_t min_shard = static_cast<std::size_t>(-1);
  for (const auto& shard : shards_) {
    std::size_t n = shard->front->store->size();
    total += n;
    memory += shard->front->memory_bytes;
    live += shard->front->store->live_bytes();
    resident += shard->front->store->resident_bytes();
    if (shard->back != nullptr) resident += shard->back->store->resident_bytes();
    max_shard = std::max(max_shard, n);
    min_shard = std::min(min_shard, n);
  }
  metrics_.size->set(static_cast<std::int64_t>(total));
  metrics_.memory->set(static_cast<std::int64_t>(memory));
  metrics_.shard_count->set(static_cast<std::int64_t>(shards_.size()));
  metrics_.shard_epoch->set(static_cast<std::int64_t>(epoch()));
  metrics_.shard_max_utxos->set(static_cast<std::int64_t>(max_shard));
  metrics_.shard_min_utxos->set(static_cast<std::int64_t>(min_shard));
  metrics_.shard_live_bytes->set(static_cast<std::int64_t>(live));
  metrics_.shard_resident_bytes->set(static_cast<std::int64_t>(resident));
}

std::uint64_t UtxoIndex::apply_op(ShardData& data, const PendingOp& op, OpCounts* counts) const {
  if (op.kind == PendingOp::Kind::kInsert) {
    if (!data.store->insert(op.outpoint, op.output.value, op.height, op.output.script_pubkey)) {
      return costs_.output_insert;  // duplicate (pre-BIP30); keep first
    }
    data.memory_bytes += entry_footprint(op.output.script_pubkey.size());
    if (counts != nullptr) ++counts->inserted;
    return costs_.output_insert;
  }
  auto erased = data.store->erase(op.outpoint);
  if (!erased) return costs_.input_remove;  // unvalidated input; tolerated
  data.memory_bytes -= entry_footprint(erased->script_len);
  if (counts != nullptr) ++counts->removed;
  return costs_.input_remove;
}

void UtxoIndex::catch_up(std::size_t shard) {
  Shard& s = *shards_[shard];
  // The build target was the published buffer two epochs ago; wait for the
  // last straggling reader to unpin it before mutating. The acquire pairs
  // with Pinned's release decrement, ordering the reader's last table reads
  // before our writes.
  while (s.back->active_pins.load(std::memory_order_acquire) != 0) std::this_thread::yield();
  for (const auto& op : s.pending) apply_op(*s.back, op, nullptr);  // silent replay
  s.pending.clear();
}

void UtxoIndex::publish(std::size_t shard) {
  Shard& s = *shards_[shard];
  std::lock_guard<std::mutex> lock(s.mu);
  std::swap(s.front, s.back);
}

void UtxoIndex::point_mutation(const PendingOp& op, ic::InstructionMeter& meter) {
  std::size_t shard = kUnrouted;
  if (op.kind == PendingOp::Kind::kInsert) {
    shard = shard_of(op.output.script_pubkey);
  } else {
    // Outpoint-keyed: probe the shards (an entry lives in exactly one, the
    // shard of its script).
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (front_of(s).store->contains(op.outpoint)) {
        shard = s;
        break;
      }
    }
    if (shard == kUnrouted) {
      meter.charge(costs_.input_remove);  // miss: charged, tolerated, no epoch
      return;
    }
  }
  OpCounts counts;
  if (shard_config_.snapshot_reads) {
    catch_up(shard);
    meter.charge(apply_op(*shards_[shard]->back, op, &counts));
    shards_[shard]->pending.push_back(op);
    epoch_seq_.fetch_add(1, std::memory_order_acq_rel);  // odd: publishing
    publish(shard);
    epoch_seq_.fetch_add(1, std::memory_order_release);
  } else {
    meter.charge(apply_op(*shards_[shard]->front, op, &counts));
    epoch_seq_.fetch_add(2, std::memory_order_release);
  }
  if (metrics_.inserts != nullptr && counts.inserted > 0) metrics_.inserts->inc();
  if (metrics_.removes != nullptr && counts.removed > 0) metrics_.removes->inc();
}

void UtxoIndex::insert(const bitcoin::OutPoint& outpoint, const bitcoin::TxOut& output,
                       int height, ic::InstructionMeter& meter) {
  if (bitcoin::is_op_return(output.script_pubkey)) {
    meter.charge(costs_.per_tx_overhead / 8);
    return;
  }
  PendingOp op;
  op.kind = PendingOp::Kind::kInsert;
  op.outpoint = outpoint;
  op.output = output;
  op.height = height;
  point_mutation(op, meter);
}

void UtxoIndex::remove(const bitcoin::OutPoint& outpoint, ic::InstructionMeter& meter) {
  PendingOp op;
  op.kind = PendingOp::Kind::kRemove;
  op.outpoint = outpoint;
  point_mutation(op, meter);
}

BlockApplyStats UtxoIndex::apply_block(const bitcoin::Block& block, int height,
                                       ic::InstructionMeter& meter,
                                       parallel::ThreadPool* pool) {
  const std::size_t n_shards = shards_.size();
  const bool snapshot = shard_config_.snapshot_reads;
  BlockApplyStats stats;
  stats.transactions = block.transactions.size();

  // Pass 1 — route. Every output of the block is mapped first so spends of
  // any in-block output resolve to the output's shard regardless of tx order
  // (a spend *preceding* its output stays a tolerated miss there, exactly as
  // on the serial path, because shard order preserves block order). Inserts
  // route directly by script; OP_RETURN outputs are charge-only and never
  // become ops.
  std::unordered_map<bitcoin::OutPoint, std::size_t> local_outputs;
  for (const auto& tx : block.transactions) {
    util::Hash256 txid = tx.txid();
    for (std::uint32_t i = 0; i < tx.outputs.size(); ++i) {
      if (bitcoin::is_op_return(tx.outputs[i].script_pubkey)) continue;
      local_outputs.emplace(bitcoin::OutPoint{txid, i}, shard_of(tx.outputs[i].script_pubkey));
    }
  }

  struct SeqOp {
    PendingOp op;
    std::size_t shard = kUnrouted;
  };
  std::vector<SeqOp> seq;
  std::vector<std::size_t> unresolved;  // indices into seq: removes of pre-block outputs
  std::uint64_t per_tx_charges = 0;
  std::uint64_t op_return_charges = 0;
  for (const auto& tx : block.transactions) {
    per_tx_charges += costs_.per_tx_overhead;
    if (!tx.is_coinbase()) {
      for (const auto& in : tx.inputs) {
        ++stats.inputs_removed;
        SeqOp sop;
        sop.op.kind = PendingOp::Kind::kRemove;
        sop.op.outpoint = in.prevout;
        auto local = local_outputs.find(in.prevout);
        if (local != local_outputs.end()) sop.shard = local->second;
        if (sop.shard == kUnrouted) unresolved.push_back(seq.size());
        seq.push_back(std::move(sop));
      }
    }
    util::Hash256 txid = tx.txid();
    for (std::uint32_t i = 0; i < tx.outputs.size(); ++i) {
      const bitcoin::TxOut& out = tx.outputs[i];
      if (bitcoin::is_op_return(out.script_pubkey)) {
        op_return_charges += costs_.per_tx_overhead / 8;
        continue;
      }
      ++stats.outputs_inserted;
      SeqOp sop;
      sop.op.kind = PendingOp::Kind::kInsert;
      sop.op.outpoint = bitcoin::OutPoint{txid, i};
      sop.op.output = out;
      sop.op.height = height;
      sop.shard = shard_of(out.script_pubkey);
      seq.push_back(std::move(sop));
    }
  }

  // Pass 2 — resolve outpoint-keyed removes against the published state,
  // shard-parallel. An outpoint lives in at most one shard, so the probes
  // write disjoint slots; misses everywhere are charged (serial semantics:
  // remove() always charges) and dropped.
  std::uint64_t miss_charges = 0;
  if (!unresolved.empty()) {
    std::vector<std::size_t> probe(unresolved.size(), kUnrouted);
    parallel::parallel_for(pool, n_shards, [&](std::size_t s) {
      const persist::ShardStore& store = *front_of(s).store;
      for (std::size_t i = 0; i < unresolved.size(); ++i) {
        if (store.contains(seq[unresolved[i]].op.outpoint)) probe[i] = s;
      }
    });
    for (std::size_t i = 0; i < unresolved.size(); ++i) {
      if (probe[i] != kUnrouted) {
        seq[unresolved[i]].shard = probe[i];
      } else {
        miss_charges += costs_.input_remove;
      }
    }
  }

  // Pass 3 — distribute to per-shard op lists, preserving block order.
  struct ShardWork {
    std::vector<PendingOp> ops;
    std::uint64_t insert_charges = 0;
    std::uint64_t remove_charges = 0;
    OpCounts counts;
  };
  std::vector<ShardWork> work(n_shards);
  for (auto& sop : seq) {
    if (sop.shard == kUnrouted) continue;
    work[sop.shard].ops.push_back(std::move(sop.op));
  }
  std::vector<std::size_t> touched;
  for (std::size_t s = 0; s < n_shards; ++s) {
    if (!work[s].ops.empty()) touched.push_back(s);
  }
  stats.shards_touched = touched.size();

  // Pass 4 — apply, shard-parallel. Snapshot mode mutates each shard's back
  // buffer (after catching it up and waiting out its last readers) while the
  // front keeps serving the previous epoch; otherwise mutate in place.
  // Charges and counts accumulate per shard, never touching the meter from a
  // worker thread.
  parallel::parallel_for(pool, touched.size(), [&](std::size_t t) {
    std::size_t s = touched[t];
    ShardWork& w = work[s];
    if (snapshot) catch_up(s);
    ShardData& target = snapshot ? *shards_[s]->back : *shards_[s]->front;
    for (const auto& op : w.ops) {
      std::uint64_t charge = apply_op(target, op, &w.counts);
      if (op.kind == PendingOp::Kind::kInsert) {
        w.insert_charges += charge;
      } else {
        w.remove_charges += charge;
      }
    }
    if (snapshot) shards_[s]->pending = std::move(w.ops);
  });

  // Pass 5 — serial epilogue in deterministic order: fixed charges first,
  // then each touched shard's accumulated charges in shard-index order. The
  // sum — and therefore every enclosing meter segment — is identical to the
  // serial path for every shard count and pool configuration.
  meter.charge(per_tx_charges + op_return_charges + miss_charges);
  std::uint64_t max_shard_charges = 0;
  std::uint64_t inserted = 0;
  std::uint64_t removed = 0;
  for (std::size_t s : touched) {
    const ShardWork& w = work[s];
    std::uint64_t shard_charges = w.insert_charges + w.remove_charges;
    meter.charge(shard_charges);
    stats.insert_instructions += w.insert_charges;
    stats.remove_instructions += w.remove_charges;
    max_shard_charges = std::max(max_shard_charges, shard_charges);
    inserted += w.counts.inserted;
    removed += w.counts.removed;
  }
  // Stats mirror the serial ingestion breakdown: OP_RETURN decode counts as
  // insert work, unresolved-miss charges as remove work.
  stats.insert_instructions += op_return_charges;
  stats.remove_instructions += miss_charges;
  stats.instructions = per_tx_charges + stats.insert_instructions + stats.remove_instructions;
  stats.critical_path_instructions =
      per_tx_charges + op_return_charges + miss_charges + max_shard_charges;

  if (metrics_.inserts != nullptr && inserted > 0) metrics_.inserts->inc(inserted);
  if (metrics_.removes != nullptr && removed > 0) metrics_.removes->inc(removed);

  // Pass 6 — publish: swap every touched shard's buffers under its mutex.
  // The epoch sequence is odd while swaps are in flight so multi-shard
  // readers (pin()) can detect a torn acquisition and retry.
  if (snapshot) {
    epoch_seq_.fetch_add(1, std::memory_order_acq_rel);
    for (std::size_t s : touched) publish(s);
    epoch_seq_.fetch_add(1, std::memory_order_release);
  } else {
    epoch_seq_.fetch_add(2, std::memory_order_release);
  }
  update_size_gauges();

  if (tracer_ != nullptr) {
    obs::ScopedSpan span(tracer_, "utxo.apply_block", "canister");
    span.attr("height", static_cast<std::int64_t>(height));
    span.attr("shards_touched", static_cast<std::uint64_t>(stats.shards_touched));
    span.attr("ops", static_cast<std::uint64_t>(stats.inputs_removed + stats.outputs_inserted));
    span.attr("instructions", stats.instructions);
    span.attr("critical_path_instructions", stats.critical_path_instructions);
    span.end_at(span.start() +
                static_cast<obs::TraceTime>(
                    static_cast<double>(stats.critical_path_instructions) / kInstructionsPerUs));
  }
  return stats;
}

std::vector<StoredUtxo> UtxoIndex::utxos_for_script(const util::Bytes& script_pubkey,
                                                    ic::InstructionMeter& meter,
                                                    std::uint64_t per_read_cost) const {
  if (per_read_cost == 0) per_read_cost = costs_.stable_utxo_read;
  std::vector<StoredUtxo> out;
  Pinned pin = pin_shard(shard_of(script_pubkey));
  out.reserve(pin->store->script_utxo_count(script_pubkey));
  auto walk = [&](const bitcoin::OutPoint& outpoint, bitcoin::Amount value, int height) {
    meter.charge(per_read_cost);
    out.push_back(StoredUtxo{outpoint, value, height});
  };
  pin->store->for_each_of_script(script_pubkey, persist::ShardStore::UtxoVisitor(walk));
  return out;
}

std::size_t UtxoIndex::utxos_for_script(const util::Bytes& script_pubkey,
                                        ic::InstructionMeter& meter, std::size_t offset,
                                        std::size_t limit, std::vector<StoredUtxo>& out,
                                        std::uint64_t per_read_cost) const {
  return utxos_for_script_paged(script_pubkey, meter, offset, limit, out,
                                [](const bitcoin::OutPoint&) { return true; }, per_read_cost);
}

bitcoin::Amount UtxoIndex::balance_of_script(const util::Bytes& script_pubkey,
                                             ic::InstructionMeter& meter) const {
  bitcoin::Amount total = 0;
  Pinned pin = pin_shard(shard_of(script_pubkey));
  auto walk = [&](const bitcoin::OutPoint&, bitcoin::Amount value, int) {
    meter.charge(costs_.stable_balance_read);
    total += value;
  };
  pin->store->for_each_of_script(script_pubkey, persist::ShardStore::UtxoVisitor(walk));
  return total;
}

std::optional<StoredUtxo> UtxoIndex::find(const bitcoin::OutPoint& outpoint) const {
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Pinned pin = pin_shard(s);
    if (auto found = pin->store->find(outpoint)) {
      return StoredUtxo{outpoint, found->value, found->height};
    }
  }
  return std::nullopt;
}

std::optional<util::Bytes> UtxoIndex::script_of(const bitcoin::OutPoint& outpoint) const {
  util::Bytes script;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Pinned pin = pin_shard(s);
    if (pin->store->script_of(outpoint, script)) return script;
  }
  return std::nullopt;
}

void UtxoIndex::load_entry(const bitcoin::OutPoint& outpoint, bitcoin::Amount value, int height,
                           util::ByteSpan script) {
  Shard& s = *shards_[shard_of(script)];
  if (s.front->store->insert(outpoint, value, height, script)) {
    s.front->memory_bytes += entry_footprint(script.size());
  }
  if (s.back != nullptr && s.back->store->insert(outpoint, value, height, script)) {
    s.back->memory_bytes += entry_footprint(script.size());
  }
}

void UtxoIndex::finish_load() {
  // Bulk loads grow the backends by vector doubling; a restore should end
  // memory-tight, so compact every buffer before publishing the epoch.
  for (auto& shard : shards_) {
    shard->front->store->compact();
    if (shard->back != nullptr) shard->back->store->compact();
  }
  epoch_seq_.fetch_add(2, std::memory_order_release);
  update_size_gauges();
}

std::size_t UtxoIndex::size() const {
  std::size_t total = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) total += pin_shard(s)->store->size();
  return total;
}

std::uint64_t UtxoIndex::memory_bytes() const {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) total += pin_shard(s)->memory_bytes;
  return total;
}

std::uint64_t UtxoIndex::live_bytes() const {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) total += pin_shard(s)->store->live_bytes();
  return total;
}

std::uint64_t UtxoIndex::resident_bytes() const {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.front->store->resident_bytes();
    if (shard.back != nullptr) total += shard.back->store->resident_bytes();
  }
  return total;
}

std::size_t UtxoIndex::distinct_scripts() const {
  // A script's entries live in exactly one shard, so per-shard counts sum.
  std::size_t total = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    total += pin_shard(s)->store->distinct_scripts();
  }
  return total;
}

util::Hash256 UtxoIndex::digest() const {
  // Pin every shard (kept alive for the walk), gather, sort globally by
  // outpoint: the serialization — and hence the digest — is independent of
  // shard count, backend, insertion order, and table iteration order. The
  // script spans point into pinned shard storage and stay valid until the
  // pins drop at function exit.
  std::vector<Pinned> pins;
  pins.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) pins.push_back(pin_shard(s));

  struct Row {
    bitcoin::OutPoint outpoint;
    bitcoin::Amount value;
    int height;
    util::ByteSpan script;
  };
  std::size_t total = 0;
  for (const auto& pin : pins) total += pin->store->size();
  std::vector<Row> rows;
  rows.reserve(total);
  for (const auto& pin : pins) {
    auto walk = [&](const bitcoin::OutPoint& outpoint, bitcoin::Amount value, int height,
                    util::ByteSpan script) { rows.push_back(Row{outpoint, value, height, script}); };
    pin->store->visit(persist::ShardStore::EntryVisitor(walk));
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.outpoint < b.outpoint; });

  util::ByteWriter w;
  w.u64le(rows.size());
  for (const Row& row : rows) {
    w.bytes(row.outpoint.txid.span());
    w.u32le(row.outpoint.vout);
    w.i64le(row.value);
    w.i32le(row.height);
    w.var_bytes(row.script);
  }
  return crypto::sha256d(w.data());
}

}  // namespace icbtc::canister
