#include "canister/utxo_index.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "bitcoin/script.h"
#include "crypto/sha256.h"

namespace icbtc::canister {

std::size_t ScriptHash::operator()(const util::Bytes& b) const noexcept {
  // FNV-1a folded over 64-bit words with the length mixed into the seed, so
  // prefixes of different lengths cannot collide trivially. The zero-padded
  // tail load is safe because the length disambiguates it.
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  std::uint64_t h = 14695981039346656037ULL ^ (static_cast<std::uint64_t>(b.size()) * kPrime);
  const std::uint8_t* p = b.data();
  std::size_t n = b.size();
  while (n >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    h = (h ^ word) * kPrime;
    p += 8;
    n -= 8;
  }
  if (n > 0) {
    std::uint64_t tail = 0;
    std::memcpy(&tail, p, n);
    h = (h ^ tail) * kPrime;
  }
  // Finalizer: FNV's multiply mixes upward only; fold the high bits back so
  // the table's low-bit bucket selection sees the whole word.
  h ^= h >> 32;
  return h;
}

std::uint64_t UtxoIndex::entry_footprint(const bitcoin::TxOut& output) {
  // Payload (outpoint 36 + value 8 + height 4 + script) plus the stable
  // B-tree node overhead (fixed-width keys, slack, versioning) of the
  // production canister's stable structures, stored in both the outpoint
  // index and the address index. Calibrated against the paper's Fig. 5:
  // ~103 GiB for ~170M UTXOs ≈ 600 bytes per UTXO.
  constexpr std::uint64_t kStableBTreeOverhead = 220;
  return 2 * (kStableBTreeOverhead + 36 + 8 + 4 + output.script_pubkey.size());
}

void UtxoIndex::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    metrics_ = Metrics{};
    return;
  }
  metrics_.inserts = &registry->counter("utxo.inserts");
  metrics_.removes = &registry->counter("utxo.removes");
  metrics_.size = &registry->gauge("utxo.size");
  metrics_.memory = &registry->gauge("utxo.memory_bytes");
  update_size_gauges();
}

void UtxoIndex::update_size_gauges() {
  if (metrics_.size == nullptr) return;
  metrics_.size->set(static_cast<std::int64_t>(by_outpoint_.size()));
  metrics_.memory->set(static_cast<std::int64_t>(memory_bytes_));
}

void UtxoIndex::insert(const bitcoin::OutPoint& outpoint, const bitcoin::TxOut& output,
                       int height, ic::InstructionMeter& meter) {
  if (bitcoin::is_op_return(output.script_pubkey)) {
    meter.charge(costs_.per_tx_overhead / 8);
    return;
  }
  meter.charge(costs_.output_insert);
  auto [it, inserted] = by_outpoint_.emplace(outpoint, Entry{output, height});
  if (!inserted) return;  // duplicate outpoint (impossible post-BIP30); keep first
  by_script_[output.script_pubkey][Key{-height, outpoint}] = output.value;
  memory_bytes_ += entry_footprint(output);
  if (metrics_.inserts != nullptr) metrics_.inserts->inc();
}

void UtxoIndex::remove(const bitcoin::OutPoint& outpoint, ic::InstructionMeter& meter) {
  meter.charge(costs_.input_remove);
  auto it = by_outpoint_.find(outpoint);
  if (it == by_outpoint_.end()) return;  // unvalidated input; tolerated
  const Entry& entry = it->second;
  auto script_it = by_script_.find(entry.output.script_pubkey);
  if (script_it != by_script_.end()) {
    script_it->second.erase(Key{-entry.height, outpoint});
    if (script_it->second.empty()) by_script_.erase(script_it);
  }
  memory_bytes_ -= entry_footprint(entry.output);
  by_outpoint_.erase(it);
  if (metrics_.removes != nullptr) metrics_.removes->inc();
}

void UtxoIndex::apply_block(const bitcoin::Block& block, int height,
                            ic::InstructionMeter& meter) {
  for (const auto& tx : block.transactions) {
    meter.charge(costs_.per_tx_overhead);
    if (!tx.is_coinbase()) {
      for (const auto& in : tx.inputs) remove(in.prevout, meter);
    }
    util::Hash256 txid = tx.txid();
    for (std::uint32_t i = 0; i < tx.outputs.size(); ++i) {
      insert(bitcoin::OutPoint{txid, i}, tx.outputs[i], height, meter);
    }
  }
  flush_size_gauges();  // gauges are batched: one update per block, not per UTXO
}

std::vector<StoredUtxo> UtxoIndex::utxos_for_script(const util::Bytes& script_pubkey,
                                                    ic::InstructionMeter& meter,
                                                    std::uint64_t per_read_cost) const {
  if (per_read_cost == 0) per_read_cost = costs_.stable_utxo_read;
  std::vector<StoredUtxo> out;
  auto it = by_script_.find(script_pubkey);
  if (it == by_script_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [key, value] : it->second) {
    meter.charge(per_read_cost);
    out.push_back(StoredUtxo{key.outpoint, value, -key.neg_height});
  }
  return out;
}

std::size_t UtxoIndex::utxos_for_script(const util::Bytes& script_pubkey,
                                        ic::InstructionMeter& meter, std::size_t offset,
                                        std::size_t limit, std::vector<StoredUtxo>& out,
                                        std::uint64_t per_read_cost) const {
  return utxos_for_script_paged(script_pubkey, meter, offset, limit, out,
                                [](const bitcoin::OutPoint&) { return true; }, per_read_cost);
}

bitcoin::Amount UtxoIndex::balance_of_script(const util::Bytes& script_pubkey,
                                             ic::InstructionMeter& meter) const {
  bitcoin::Amount total = 0;
  auto it = by_script_.find(script_pubkey);
  if (it == by_script_.end()) return 0;
  for (const auto& [key, value] : it->second) {
    meter.charge(costs_.stable_balance_read);
    total += value;
  }
  return total;
}

std::optional<StoredUtxo> UtxoIndex::find(const bitcoin::OutPoint& outpoint) const {
  auto it = by_outpoint_.find(outpoint);
  if (it == by_outpoint_.end()) return std::nullopt;
  return StoredUtxo{outpoint, it->second.output.value, it->second.height};
}

const util::Bytes* UtxoIndex::script_of(const bitcoin::OutPoint& outpoint) const {
  auto it = by_outpoint_.find(outpoint);
  if (it == by_outpoint_.end()) return nullptr;
  return &it->second.output.script_pubkey;
}

util::Hash256 UtxoIndex::digest() const {
  std::vector<const std::pair<const bitcoin::OutPoint, Entry>*> entries;
  entries.reserve(by_outpoint_.size());
  for (const auto& kv : by_outpoint_) entries.push_back(&kv);
  std::sort(entries.begin(), entries.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });

  util::ByteWriter w;
  w.u64le(entries.size());
  for (const auto* kv : entries) {
    w.bytes(kv->first.txid.span());
    w.u32le(kv->first.vout);
    w.i64le(kv->second.output.value);
    w.i32le(kv->second.height);
    w.var_bytes(kv->second.output.script_pubkey);
  }
  return crypto::sha256d(w.data());
}

}  // namespace icbtc::canister
