// The Bitcoin canister (§III-C): the smart contract holding the Bitcoin
// blockchain state on the IC.
//
// It stores the full UTXO set up to a difficulty-δ-stable *anchor* block
// (δ=144 on mainnet), keeps all headers above the anchor in a tree together
// with the corresponding unstable blocks, ingests adapter responses per
// Algorithm 2, and serves get_utxos / get_balance / send_transaction to
// other canisters. It refuses to answer while out of sync (τ gating).
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>

#include "adapter/adapter.h"
#include "bitcoin/address.h"
#include "canister/unstable_index.h"
#include "canister/utxo_index.h"
#include "chain/header_tree.h"
#include "ic/metering.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/trace.h"

namespace icbtc::canister {

/// How the query endpoints derive the unstable part of the merged view.
/// Responses and metered instruction counts are identical in both modes
/// (enforced by differential tests and the bench_request_latency gate);
/// only host wall-clock differs.
enum class UnstableQueryMode {
  kScan,     // re-scan every unstable block's transactions per request
  kIndexed,  // chain-ordered BlockDelta lookups + tip-keyed memo
};

struct CanisterConfig {
  /// δ: difficulty-based stability threshold for anchor advancement
  /// (144 on mainnet — roughly one day of blocks).
  int stability_delta = 144;
  /// τ: the canister replies with errors when the max header height exceeds
  /// the max available-block height by more than this (2 in production).
  int sync_slack = 2;
  /// Maximum UTXOs per get_utxos page.
  std::size_t utxos_per_page = 1000;
  /// Blocks scanned by get_current_fee_percentiles.
  int fee_window_blocks = 6;
  /// Unstable read path; kScan is kept as the differential-test oracle and
  /// the bench baseline.
  UnstableQueryMode unstable_query_mode = UnstableQueryMode::kIndexed;
  /// Stable UTXO set shards (>= 1); block ingestion applies them in parallel
  /// when the shared thread pool is installed. Responses, metering, and
  /// digests are bit-identical for every shard count (1 reproduces the
  /// unsharded layout exactly).
  std::size_t utxo_shards = 8;
  /// Epoch snapshot reads: queries serve the last published shard snapshots
  /// while ingestion builds the next epoch (see UtxoIndex::ShardConfig).
  bool utxo_snapshot_reads = true;
  /// Stable shard backing store (see persist::UtxoBackend). Responses,
  /// metering, digests, and checkpoints are backend-invariant; only host
  /// memory and wall-clock differ.
  persist::UtxoBackend utxo_backend = persist::UtxoBackend::kArena;
  InstructionCosts costs;

  static CanisterConfig for_params(const bitcoin::ChainParams& params) {
    CanisterConfig c;
    c.stability_delta = params.stability_delta;
    c.sync_slack = params.sync_slack;
    return c;
  }
};

enum class Status {
  kOk,
  kNotSynced,                 // header tree ahead of available blocks by > τ
  kBadAddress,                // undecodable address for this network
  kMinConfirmationsTooLarge,  // c > δ (response could be incorrect, §III-C)
  kMalformedTransaction,      // send_transaction bytes fail syntactic checks
  kBadPage,                   // invalid pagination token
  kBadRange,                  // invalid height range for get_block_headers
};

const char* to_string(Status s);

template <typename T>
struct Outcome {
  Status status = Status::kOk;
  T value{};

  bool ok() const { return status == Status::kOk; }
};

struct Utxo {
  bitcoin::OutPoint outpoint;
  bitcoin::Amount value = 0;
  int height = 0;

  bool operator==(const Utxo&) const = default;
};

struct GetUtxosRequest {
  std::string address;
  /// Number of confirmations required; 0 means "use the full current chain".
  int min_confirmations = 0;
  /// Page token from a previous response.
  std::optional<util::Bytes> page;
};

struct GetUtxosResponse {
  std::vector<Utxo> utxos;
  util::Hash256 tip_hash;   // tip of the considered chain
  int tip_height = 0;
  std::optional<util::Bytes> next_page;  // set when more UTXOs remain
};

/// Per-stable-block ingestion record (drives the Fig. 6 benches).
struct IngestStats {
  int height = 0;
  std::size_t transactions = 0;
  std::size_t inputs_removed = 0;
  std::size_t outputs_inserted = 0;
  std::uint64_t instructions = 0;
  std::uint64_t insert_instructions = 0;
  std::uint64_t remove_instructions = 0;
  /// Modelled shard-parallel latency: serial prologue + max per-shard
  /// mutation charge (== instructions at 1 shard). See BlockApplyStats.
  std::uint64_t critical_path_instructions = 0;
  std::size_t shards_touched = 0;
};

class BitcoinCanister {
 public:
  BitcoinCanister(const bitcoin::ChainParams& params, CanisterConfig config);

  const bitcoin::ChainParams& params() const { return *params_; }
  const CanisterConfig& config() const { return config_; }

  // -------- Adapter interaction (via the IC's consensus layer) ----------

  /// Builds the periodic request (β*, A, T). Drains the outbound tx queue.
  adapter::AdapterRequest make_request();

  /// Algorithm 2: ingest an adapter response. `now_s` drives header
  /// timestamp validation. Returns how many blocks/headers were accepted.
  struct ProcessResult {
    std::size_t blocks_stored = 0;
    std::size_t headers_appended = 0;
    std::size_t anchors_advanced = 0;
  };
  ProcessResult process_response(const adapter::AdapterResponse& response, std::int64_t now_s);

  /// Sync gate (Algorithm 2 line 22): max height in T minus max height of
  /// available blocks is at most τ.
  bool is_synced() const;

  // ----------------------------- Public API -----------------------------

  Outcome<GetUtxosResponse> get_utxos(const GetUtxosRequest& request);
  Outcome<bitcoin::Amount> get_balance(const std::string& address, int min_confirmations = 0);
  Status send_transaction(const util::Bytes& raw_transaction);

  /// Fee percentiles (in millisatoshi per vbyte) over the transactions of
  /// the last `fee_window_blocks` blocks of the current chain, as the
  /// production canister's get_current_fee_percentiles returns: 101 entries
  /// for the 0th..100th percentile. Empty when no fee data is available
  /// (e.g. only coinbase transactions).
  Outcome<std::vector<std::uint64_t>> get_current_fee_percentiles();

  /// Block headers in the given height range of the current chain (both ends
  /// inclusive; `end_height` < 0 means "up to the tip"). Heights below the
  /// anchor are served from the archived stable headers. Mirrors the
  /// production canister's get_block_headers endpoint.
  struct GetBlockHeadersResponse {
    int tip_height = 0;
    std::vector<bitcoin::BlockHeader> headers;
  };
  Outcome<GetBlockHeadersResponse> get_block_headers(int start_height, int end_height = -1);

  // ------------------------- Upgrade persistence -------------------------

  /// Serializes the full canister state (anchor, header tree, unstable
  /// blocks, stable UTXO set, archived headers, pending transactions) — what
  /// a production canister writes to stable memory across upgrades.
  util::Bytes serialize_state() const;

  /// Reconstructs a canister from a serialize_state() snapshot. Throws
  /// util::DecodeError on malformed input.
  static BitcoinCanister from_snapshot(const bitcoin::ChainParams& params,
                                       CanisterConfig config, util::ByteSpan snapshot);

  /// V2 checkpoint: the sectioned, CRC-guarded persist envelope (see
  /// persist/checkpoint.h and DESIGN.md §12). Every section is canonical —
  /// the UTXO set globally sorted by outpoint, header/block sets sorted by
  /// hash — so the byte stream is a pure function of logical state:
  /// invariant under the writer's shard count, backend, snapshot mode, and
  /// ingestion interleaving. A checkpoint written at 16 shards restores at 4.
  util::Bytes write_checkpoint() const;

  /// Rebuilds a canister from a write_checkpoint() stream under a possibly
  /// different CanisterConfig (shard count / backend / query mode). The
  /// restored canister's UTXO digest, query responses, and meter total are
  /// identical to the writer's. Throws persist::CheckpointError — never a
  /// partially restored canister — on any corruption.
  static BitcoinCanister from_checkpoint(const bitcoin::ChainParams& params,
                                         CanisterConfig config, util::ByteSpan checkpoint);

  /// File convenience wrappers (`*.ckpt` by convention; gitignored).
  void checkpoint(const std::string& path) const;
  static BitcoinCanister restore(const bitcoin::ChainParams& params, CanisterConfig config,
                                 const std::string& path);

  // ---------------------------- Introspection ---------------------------

  int anchor_height() const { return tree_.root().height; }
  util::Hash256 anchor_hash() const { return tree_.root_hash(); }
  int tip_height() const { return tree_.best_height(); }
  std::size_t utxo_count() const { return stable_utxos_.size(); }
  /// Modelled memory footprint: stable UTXO store + unstable blocks + headers.
  std::uint64_t memory_bytes() const;
  std::size_t unstable_block_count() const { return unstable_blocks_.size(); }
  std::size_t pending_transactions() const { return pending_txs_.size(); }
  const chain::HeaderTree& header_tree() const { return tree_; }
  const UtxoIndex& stable_utxos() const { return stable_utxos_; }
  /// Deterministic digest of the stable UTXO set (see UtxoIndex::digest);
  /// the bench/CI compare scalar vs. parallel ingestion through this.
  util::Hash256 utxo_digest() const { return stable_utxos_.digest(); }
  ic::InstructionMeter& meter() { return meter_; }
  const std::vector<IngestStats>& ingest_log() const { return ingest_log_; }
  /// Number of stable headers archived below the anchor (kept forever).
  std::size_t archived_headers() const { return stable_headers_.size(); }

  /// Attaches a metrics registry (nullptr detaches): per-endpoint call
  /// counts with instruction-cost and simulated-latency distributions,
  /// anchor/tip/unstable-block gauges, sync-gate rejections, and the stable
  /// UTXO store's `utxo.*` metrics.
  void set_metrics(obs::MetricsRegistry* registry);

  /// Attaches a tracer (nullptr detaches): every endpoint call becomes a
  /// "canister.<endpoint>" span ending at its modelled execution latency
  /// (metered instructions at 2e9/s), block ingestion yields per-block
  /// "canister.ingest_block" child spans, and anchor advancement emits an
  /// "anchor_advanced" flight-recorder event. With the shared thread pool
  /// installed, process_response precomputes txids in parallel under a
  /// TraceTaskGroup, keeping exports identical to serial runs.
  void set_tracer(obs::Tracer* tracer) {
    tracer_ = tracer;
    stable_utxos_.set_tracer(tracer);
    unstable_index_.set_tracer(tracer);
  }
  obs::Tracer* tracer() const { return tracer_; }

  /// Attaches a per-endpoint SLO tracker (nullptr detaches): every endpoint
  /// call records its modelled execution latency (µs, metered instructions
  /// at 2e9/s) into the tracker's "canister.<endpoint>" endpoint. Handles
  /// are resolved once here, so the per-call cost is one null check plus a
  /// histogram record. Latency only — errors are recorded by drivers that
  /// see the response status. Order-independent w.r.t. set_metrics().
  void set_slo(obs::SloTracker* slo);
  obs::SloTracker* slo() const { return slo_tracker_; }

  /// The unstable-block delta index (empty in kScan mode).
  const UnstableIndex& unstable_index() const { return unstable_index_; }

  /// Installs a host wall-clock (µs) feeding the `canister.delta.build_us`
  /// histogram; see UnstableIndex::set_build_clock.
  void set_delta_build_clock(std::function<std::uint64_t()> now_us) {
    unstable_index_.set_build_clock(std::move(now_us));
  }

 private:
  struct UnstableView;

  /// Per-endpoint observability hooks; all nullptr without a registry.
  struct EndpointMetrics {
    obs::Counter* calls = nullptr;
    obs::Histogram* instructions = nullptr;
    obs::Histogram* latency_ms = nullptr;
    obs::SloTracker::Endpoint* slo = nullptr;
  };
  /// RAII guard: counts the call and, on scope exit, records the metered
  /// instruction delta and its simulated execution latency — into the
  /// metrics histograms and, when a tracer is attached, a
  /// "canister.<endpoint>" span carrying the same numbers.
  class EndpointCall {
   public:
    EndpointCall(BitcoinCanister& canister, std::string_view name,
                 const EndpointMetrics& metrics);
    EndpointCall(const EndpointCall&) = delete;
    EndpointCall& operator=(const EndpointCall&) = delete;
    ~EndpointCall();

   private:
    const EndpointMetrics* metrics_;
    ic::InstructionMeter::Segment segment_;
    obs::ScopedSpan span_;
  };

  /// is_synced(), but counts a `canister.sync_rejections` when it fails.
  bool sync_gate();
  /// Pushes anchor/tip/unstable/pending gauges after a state change.
  void update_state_gauges();
  /// (Re)resolves the per-endpoint SLO handles from slo_tracker_ into
  /// metrics_.*.slo — called by both set_metrics() and set_slo() so the two
  /// attachments compose in either order.
  void resolve_slo_endpoints();

  /// Advances the anchor while some block at anchor height + 1 is
  /// difficulty-based δ-stable w.r.t. the anchor's work.
  std::size_t advance_anchor();

  /// Resolves an address to its scriptPubKey, or kBadAddress.
  Outcome<util::Bytes> script_for(const std::string& address) const;

  /// Height of the considered tip for `min_confirmations`, along the current
  /// chain.
  std::pair<util::Hash256, int> considered_tip(int min_confirmations) const;

  /// The unstable chain's view up to the considered height for `script`:
  /// surviving unstable outputs (sorted newest-first) plus the set of all
  /// outpoints spent by unstable transactions. Dispatches on
  /// config_.unstable_query_mode; both paths charge identical instructions.
  UnstableView unstable_view(const util::Bytes& script, int considered_height);
  /// Naive per-request scan over every unstable block's transactions (the
  /// oracle for the differential tests and the bench baseline).
  UnstableView unstable_view_scan(const util::Bytes& script, int considered_height);
  /// Chain-ordered BlockDelta lookups with a tip-keyed memo — O(relevant).
  UnstableView unstable_view_indexed(const util::Bytes& script, int considered_height);

  bool indexed_queries() const {
    return config_.unstable_query_mode == UnstableQueryMode::kIndexed;
  }
  /// Recomputes the incrementally tracked max available-block height after
  /// anchor advances or fork pruning shrink the unstable set.
  void recompute_max_available_height();

  /// Collects the address view (stable + unstable up to the considered tip).
  /// `stable_read_cost` overrides the per-UTXO read cost (0 = default); the
  /// balance endpoint uses the cheaper accumulate-only cost.
  std::vector<Utxo> collect_utxos(const util::Bytes& script, int considered_height,
                                  std::uint64_t stable_read_cost = 0);

  /// Paged variant used by get_utxos: appends the entries with rank
  /// [offset, offset + limit) of the combined (unstable, then stable)
  /// survivor list to `out`, metering stable reads only for what it appends.
  /// Returns the total survivor count so the caller can validate the offset
  /// and mint the next page token.
  std::size_t collect_utxos_page(const util::Bytes& script, int considered_height,
                                 std::size_t offset, std::size_t limit, std::vector<Utxo>& out);

  const bitcoin::ChainParams* params_;
  CanisterConfig config_;
  ic::InstructionMeter meter_;

  UtxoIndex stable_utxos_;
  chain::HeaderTree tree_;  // rooted at the anchor
  std::unordered_map<util::Hash256, bitcoin::Block> unstable_blocks_;
  UnstableIndex unstable_index_;  // per-block deltas over unstable_blocks_
  /// Max height among available (stored) blocks and the anchor, maintained
  /// incrementally so is_synced() is O(1) instead of a per-call scan.
  int max_available_height_ = 0;
  std::vector<bitcoin::BlockHeader> stable_headers_;  // archive below the anchor
  std::deque<util::Bytes> pending_txs_;
  std::vector<IngestStats> ingest_log_;

  struct Metrics {
    EndpointMetrics get_utxos;
    EndpointMetrics get_balance;
    EndpointMetrics send_transaction;
    EndpointMetrics fee_percentiles;
    EndpointMetrics block_headers;
    EndpointMetrics process_response;
    obs::Counter* sync_rejections = nullptr;
    obs::Counter* blocks_stored = nullptr;
    obs::Counter* headers_appended = nullptr;
    obs::Counter* blocks_ingested = nullptr;
    obs::Histogram* ingest_instructions = nullptr;
    obs::Gauge* anchor_height = nullptr;
    obs::Gauge* tip_height = nullptr;
    obs::Gauge* unstable_blocks = nullptr;
    obs::Gauge* pending = nullptr;
  };
  Metrics metrics_;
  obs::Tracer* tracer_ = nullptr;
  obs::SloTracker* slo_tracker_ = nullptr;
};

}  // namespace icbtc::canister
