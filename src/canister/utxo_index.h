// The Bitcoin canister's stable UTXO store: the full UTXO set up to the
// anchor height, indexed both by outpoint (for spend removal) and by
// scriptPubKey (for get_utxos/get_balance), with instruction metering that
// models the canister's measured per-operation costs (Fig. 6).
//
// The store is partitioned into N shards keyed by a serialization-stable
// hash of the scriptPubKey bytes, so every mutation of a UTXO — its insert
// and its eventual spend — lands on exactly one shard. apply_block
// partitions a block's inserts/removes by shard (outpoint-keyed removes are
// routed via a per-block script-resolution pass) and applies the shards in
// parallel on src/parallel's pool; metering stays bit-exact with the serial
// path because charges accumulate per shard and are summed into the meter in
// deterministic shard order. With snapshot reads enabled, each shard is
// double-buffered and queries pin the last *published* epoch: reads traverse
// an immutable shard snapshot (acquired via a mutex-guarded pointer copy,
// never blocked behind mutation work) while ingestion builds the next epoch
// off to the side.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "bitcoin/block.h"
#include "bitcoin/transaction.h"
#include "ic/metering.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "persist/shard_store.h"

namespace icbtc::canister {

/// Instruction costs, calibrated against the paper's measurements: block
/// ingestion averages ~21.6e9 instructions with roughly half spent on output
/// insertions and half on input removals (Fig. 6), i.e. a few million
/// instructions per UTXO mutation of the large stable store. Reads of stable
/// UTXOs are cheaper but still dominate reads of unstable blocks (the
/// bifurcation in Fig. 7 right).
struct InstructionCosts {
  std::uint64_t output_insert = 4'200'000;
  std::uint64_t input_remove = 4'600'000;
  std::uint64_t stable_utxo_read = 310'000;
  /// Balance reads only accumulate values (no outpoint materialization or
  /// response encoding), hence far cheaper per UTXO — the ~23x cost gap
  /// between get_balance and get_utxos in §IV-B.
  std::uint64_t stable_balance_read = 55'000;
  std::uint64_t unstable_utxo_read = 45'000;
  std::uint64_t unstable_block_scan = 220'000;  // per unstable block visited
  std::uint64_t request_overhead = 5'500'000;   // decode/encode, certification
  std::uint64_t per_tx_overhead = 90'000;       // per transaction in a block
};

struct StoredUtxo {
  bitcoin::OutPoint outpoint;
  bitcoin::Amount value = 0;
  int height = 0;

  bool operator==(const StoredUtxo&) const = default;
};

/// Hash functor for scriptPubKey byte strings, shared by the stable store's
/// script index and the unstable delta index. Folds eight bytes per step
/// (FNV-style multiply over 64-bit words) instead of the byte-at-a-time loop
/// it replaces — same interface, same lookup behavior, ~8x fewer multiplies
/// on the `by_script_` hot path. Process-local only: values depend on host
/// endianness and must never be serialized — which is also why it must NOT
/// pick shards (see stable_script_shard_hash).
struct ScriptHash {
  std::size_t operator()(const util::Bytes& b) const noexcept;
};

/// Serialization-stable reduction of script bytes used for shard selection:
/// byte-at-a-time FNV-1a 64, independent of host endianness and word size,
/// so shard assignment survives checkpoint/restart across machines. Pinned
/// by known-answer tests; never change without a migration plan.
std::uint64_t stable_script_shard_hash(util::ByteSpan script) noexcept;

/// Per-block apply statistics (drives IngestStats and the Fig. 6 benches).
struct BlockApplyStats {
  std::size_t transactions = 0;
  std::size_t inputs_removed = 0;    // remove ops issued (all non-coinbase inputs)
  std::size_t outputs_inserted = 0;  // non-OP_RETURN outputs
  std::uint64_t instructions = 0;    // total charged to the meter by this block
  std::uint64_t insert_instructions = 0;
  std::uint64_t remove_instructions = 0;
  /// Modelled shard-parallel latency of the block in instructions: the serial
  /// prologue (per-tx overhead, unrouted removes, OP_RETURN decode) plus the
  /// *maximum* per-shard mutation charge — what a replica executing shards
  /// concurrently would wait for, vs. `instructions` which is the serial sum.
  std::uint64_t critical_path_instructions = 0;
  std::size_t shards_touched = 0;
};

class UtxoIndex {
 public:
  struct ShardConfig {
    /// Number of shards (>= 1). 1 reproduces the unsharded layout.
    std::size_t shards = 1;
    /// Double-buffer each shard and publish epochs so reads can serve a
    /// consistent snapshot while apply_block mutates. Costs 2x host memory
    /// and replays each block's ops once more (catch-up) per touched shard.
    bool snapshot_reads = false;
    /// Per-shard backing store. The flat arena is the production layout; the
    /// node-map backend is kept as the differential oracle and bench
    /// baseline. Responses, metering, and digests are backend-invariant.
    persist::UtxoBackend backend = persist::UtxoBackend::kArena;
  };

  UtxoIndex() : UtxoIndex(InstructionCosts{}) {}
  explicit UtxoIndex(InstructionCosts costs);  // single shard, no snapshots
  UtxoIndex(InstructionCosts costs, ShardConfig shard_config);

  UtxoIndex(UtxoIndex&& other) noexcept;
  UtxoIndex& operator=(UtxoIndex&& other) noexcept;

  const InstructionCosts& costs() const { return costs_; }
  std::size_t shard_count() const { return shards_.size(); }
  bool snapshot_reads() const { return shard_config_.snapshot_reads; }
  persist::UtxoBackend backend() const { return shard_config_.backend; }
  /// Published epoch: increments once per apply_block (and once per point
  /// mutation), after the new state becomes visible to readers.
  std::uint64_t epoch() const { return epoch_seq_.load(std::memory_order_acquire) / 2; }

  /// Shard owning `script_pubkey` under the current configuration.
  std::size_t shard_of(util::ByteSpan script_pubkey) const {
    return static_cast<std::size_t>(stable_script_shard_hash(script_pubkey) % shards_.size());
  }

  /// Inserts an output. OP_RETURN outputs are unspendable and skipped (but
  /// still charged a nominal decode cost). Point mutations are setup/restore
  /// helpers: they mutate the published buffer in place and are NOT safe
  /// against concurrent snapshot readers (apply_block is the publisher).
  void insert(const bitcoin::OutPoint& outpoint, const bitcoin::TxOut& output, int height,
              ic::InstructionMeter& meter);

  /// Removes a spent output; missing outpoints are tolerated (the canister
  /// does not validate transactions, §III-C) but still charged. Same
  /// single-threaded contract as insert().
  void remove(const bitcoin::OutPoint& outpoint, ic::InstructionMeter& meter);

  /// Applies every transaction of a block (inputs removed, outputs added).
  /// With `pool` non-null the per-shard mutations run shard-parallel; the
  /// meter total, metrics, digest, and final state are bit-identical for
  /// every shard count and pool configuration. With snapshot reads enabled,
  /// concurrent readers keep serving the previous epoch until the block's
  /// state is published at the end of the call.
  BlockApplyStats apply_block(const bitcoin::Block& block, int height,
                              ic::InstructionMeter& meter,
                              parallel::ThreadPool* pool = nullptr);

  /// All UTXOs paying `script_pubkey`, sorted by height descending then by
  /// outpoint (the get_utxos response order). Charges `per_read_cost` per
  /// returned entry (0 = the default stable_utxo_read).
  std::vector<StoredUtxo> utxos_for_script(const util::Bytes& script_pubkey,
                                           ic::InstructionMeter& meter,
                                           std::uint64_t per_read_cost = 0) const;

  /// Pagination-aware variant: walks the script's UTXO list (canonical order)
  /// exactly once, appends the entries with rank [offset, offset + limit)
  /// among those passing `keep(outpoint)` to `out`, and charges
  /// `per_read_cost` only for appended entries — a page meters only what it
  /// returns. Returns the total number of entries passing `keep`. A script's
  /// UTXOs live in exactly one shard, so a page reads one pinned snapshot and
  /// the response order is shard-count-invariant.
  template <typename Keep>
  std::size_t utxos_for_script_paged(const util::Bytes& script_pubkey,
                                     ic::InstructionMeter& meter, std::size_t offset,
                                     std::size_t limit, std::vector<StoredUtxo>& out, Keep&& keep,
                                     std::uint64_t per_read_cost = 0) const {
    if (per_read_cost == 0) per_read_cost = costs_.stable_utxo_read;
    Pinned pin = pin_shard(shard_of(script_pubkey));
    std::size_t kept = 0;
    auto walk = [&](const bitcoin::OutPoint& outpoint, bitcoin::Amount value, int height) {
      if (!keep(outpoint)) return;
      if (kept >= offset && kept - offset < limit) {
        meter.charge(per_read_cost);
        out.push_back(StoredUtxo{outpoint, value, height});
      }
      ++kept;
    };
    pin->store->for_each_of_script(script_pubkey, persist::ShardStore::UtxoVisitor(walk));
    return kept;
  }

  /// Keep-all offset/limit overload.
  std::size_t utxos_for_script(const util::Bytes& script_pubkey, ic::InstructionMeter& meter,
                               std::size_t offset, std::size_t limit,
                               std::vector<StoredUtxo>& out,
                               std::uint64_t per_read_cost = 0) const;

  /// Sum of values paying `script_pubkey`.
  bitcoin::Amount balance_of_script(const util::Bytes& script_pubkey,
                                    ic::InstructionMeter& meter) const;

  /// Looks up a single UTXO by outpoint (used to resolve unstable spends of
  /// stable outputs). Probes the shards; an outpoint lives in the shard of
  /// its script, so at most one shard answers.
  std::optional<StoredUtxo> find(const bitcoin::OutPoint& outpoint) const;
  /// The script paying a stored outpoint (copied out of the backing store),
  /// or nullopt.
  std::optional<util::Bytes> script_of(const bitcoin::OutPoint& outpoint) const;

  /// Visits every entry as fn(outpoint, value, height, script_span); used by
  /// state serialization. Order is deterministic for a fixed shard
  /// configuration and mutation history (shards in index order, each shard
  /// in its backend order) but NOT shard-count-invariant — use digest() for
  /// cross-configuration comparison. The script span is only valid for the
  /// duration of the callback. Quiesced callers only.
  template <typename Fn>
  void visit(Fn&& fn) const {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      Pinned pin = pin_shard(s);
      auto walk = [&](const bitcoin::OutPoint& outpoint, bitcoin::Amount value, int height,
                      util::ByteSpan script) { fn(outpoint, value, height, script); };
      pin->store->visit(persist::ShardStore::EntryVisitor(walk));
    }
  }

  /// Bulk-restore path: inserts one entry directly into the owning shard's
  /// buffers (both buffers in snapshot mode), bypassing the per-mutation
  /// catch-up/publish machinery — restoring 1M+ UTXOs must not replay the
  /// epoch protocol per entry. The index must be quiescent and freshly
  /// constructed; call finish_load() once after the last entry.
  void load_entry(const bitcoin::OutPoint& outpoint, bitcoin::Amount value, int height,
                  util::ByteSpan script);
  /// Seals a load_entry() sequence: bumps the epoch once and refreshes gauges.
  void finish_load();

  std::size_t size() const;
  /// Modelled stable-memory footprint in bytes (drives Fig. 5): outpoint +
  /// value + height + script, plus both index overheads. Shard-count- and
  /// snapshot-invariant: the model charges the logical set once, regardless
  /// of host-side double-buffering.
  std::uint64_t memory_bytes() const;
  /// Exact host bytes attributable to live entries in the published buffers
  /// (backend accounting, not the Fig. 5 model).
  std::uint64_t live_bytes() const;
  /// Exact host capacity held by every shard buffer — front AND back in
  /// snapshot mode, since the host really holds both.
  std::uint64_t resident_bytes() const;
  std::size_t distinct_scripts() const;

  /// Attaches a metrics registry (nullptr detaches): insert/remove rates,
  /// size/memory gauges under `utxo.*`, and shard-layout gauges under
  /// `utxo.shard.*` (count, published epoch, min/max shard size). The
  /// shard-layout gauges describe the configuration, so snapshots taken at
  /// different shard counts differ in exactly that namespace.
  void set_metrics(obs::MetricsRegistry* registry);

  /// Attaches a tracer (nullptr detaches): apply_block emits a
  /// "utxo.apply_block" span whose end time is the modelled shard-parallel
  /// latency (critical-path instructions at the canister's 2000/µs rate).
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Pushes the size/memory/shard gauges to the registry. insert/remove no
  /// longer update gauges per mutation; batch callers (apply_block, the
  /// canister's ingestion loop) flush once per block instead.
  void flush_size_gauges() { update_size_gauges(); }

  /// Deterministic digest of the entire UTXO set: sha256 over the
  /// outpoint-sorted serialization of every entry (outpoint, value, height,
  /// script). Independent of insertion order, hash-map iteration order, AND
  /// shard count — serial and shard-parallel ingestion at any configuration
  /// must produce identical digests.
  util::Hash256 digest() const;

 private:
  /// One shard's backing store. Published snapshots are immutable while they
  /// are the front buffer; `active_pins` counts readers still traversing a
  /// buffer after it was unpublished, so the writer knows when it may be
  /// recycled as the next epoch's build target.
  struct ShardData {
    explicit ShardData(persist::UtxoBackend backend)
        : store(persist::make_shard_store(backend)) {}
    std::unique_ptr<persist::ShardStore> store;
    std::uint64_t memory_bytes = 0;  // modelled Fig. 5 footprint of this buffer
    std::atomic<std::uint32_t> active_pins{0};
  };

  /// A block mutation routed to one shard, kept in block-sequence order.
  /// Owns its script bytes so catch-up replay stays valid after the source
  /// block is discarded (the canister erases ingested blocks immediately).
  struct PendingOp {
    enum class Kind : std::uint8_t { kInsert, kRemove };
    Kind kind = Kind::kInsert;
    bitcoin::OutPoint outpoint;
    bitcoin::TxOut output;  // insert only
    int height = 0;         // insert only
  };

  struct Shard {
    mutable std::mutex mu;  // guards front/back pointer swaps and reader acquisition
    std::shared_ptr<ShardData> front;  // published; immutable while front
    std::shared_ptr<ShardData> back;   // writer's build target (snapshot mode only)
    /// Ops already applied to front but not yet to back; replaying them
    /// (catch-up) brings back up to front's state before the next block.
    std::vector<PendingOp> pending;
  };

  /// RAII pin of one shard's published snapshot: mutex-guarded pointer copy
  /// on acquire (O(1), never blocked behind mutation work), lock-free
  /// traversal, release-fenced unpin so the writer's exclusivity wait
  /// synchronizes with the last reader.
  class Pinned {
   public:
    Pinned(std::shared_ptr<ShardData> data) : data_(std::move(data)) {
      data_->active_pins.fetch_add(1, std::memory_order_acq_rel);
    }
    ~Pinned() {
      if (data_ != nullptr) data_->active_pins.fetch_sub(1, std::memory_order_release);
    }
    Pinned(const Pinned&) = delete;
    Pinned& operator=(const Pinned&) = delete;
    Pinned(Pinned&& other) noexcept : data_(std::move(other.data_)) { other.data_.reset(); }

    const ShardData* operator->() const { return data_.get(); }
    const ShardData& operator*() const { return *data_; }

   private:
    std::shared_ptr<ShardData> data_;
  };

  Pinned pin_shard(std::size_t shard) const;
  /// The writer's view of a shard's current state (front buffer, unpinned) —
  /// only safe from the mutation path itself.
  ShardData& front_of(std::size_t shard) { return *shards_[shard]->front; }
  const ShardData& front_of(std::size_t shard) const { return *shards_[shard]->front; }

  /// Applies one op to `data`, returning the instructions the op charges.
  /// `accum` (nullable) receives insert/remove counts for metrics.
  struct OpCounts {
    std::uint64_t inserted = 0;
    std::uint64_t removed = 0;
  };
  std::uint64_t apply_op(ShardData& data, const PendingOp& op, OpCounts* counts) const;

  /// Brings a shard's back buffer up to its front's state (replays pending,
  /// waits for reader exclusivity first) — snapshot mode only.
  void catch_up(std::size_t shard);
  /// Publishes a shard's back buffer as the new front (pointer swap under
  /// the shard mutex); the old front becomes the next build target.
  void publish(std::size_t shard);
  /// Applies a point mutation to both buffers (snapshot mode) or the single
  /// buffer, bumping the epoch.
  void point_mutation(const PendingOp& op, ic::InstructionMeter& meter);

  void update_size_gauges();

  static std::uint64_t entry_footprint(std::size_t script_len);

  InstructionCosts costs_;
  ShardConfig shard_config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Seqlock-style epoch sequence: odd while a publication is in progress,
  /// epoch = seq / 2. Readers needing a cross-shard-consistent view retry
  /// around odd/changed values; single-script reads don't need it (a script
  /// lives in exactly one shard).
  std::atomic<std::uint64_t> epoch_seq_{0};

  struct Metrics {
    obs::Counter* inserts = nullptr;
    obs::Counter* removes = nullptr;
    obs::Gauge* size = nullptr;
    obs::Gauge* memory = nullptr;
    obs::Gauge* shard_count = nullptr;
    obs::Gauge* shard_epoch = nullptr;
    obs::Gauge* shard_max_utxos = nullptr;
    obs::Gauge* shard_min_utxos = nullptr;
    obs::Gauge* shard_live_bytes = nullptr;
    obs::Gauge* shard_resident_bytes = nullptr;
  };
  Metrics metrics_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace icbtc::canister
