// The Bitcoin canister's stable UTXO store: the full UTXO set up to the
// anchor height, indexed both by outpoint (for spend removal) and by
// scriptPubKey (for get_utxos/get_balance), with instruction metering that
// models the canister's measured per-operation costs (Fig. 6).
#pragma once

#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "bitcoin/block.h"
#include "bitcoin/transaction.h"
#include "ic/metering.h"
#include "obs/metrics.h"

namespace icbtc::canister {

/// Instruction costs, calibrated against the paper's measurements: block
/// ingestion averages ~21.6e9 instructions with roughly half spent on output
/// insertions and half on input removals (Fig. 6), i.e. a few million
/// instructions per UTXO mutation of the large stable store. Reads of stable
/// UTXOs are cheaper but still dominate reads of unstable blocks (the
/// bifurcation in Fig. 7 right).
struct InstructionCosts {
  std::uint64_t output_insert = 4'200'000;
  std::uint64_t input_remove = 4'600'000;
  std::uint64_t stable_utxo_read = 310'000;
  /// Balance reads only accumulate values (no outpoint materialization or
  /// response encoding), hence far cheaper per UTXO — the ~23x cost gap
  /// between get_balance and get_utxos in §IV-B.
  std::uint64_t stable_balance_read = 55'000;
  std::uint64_t unstable_utxo_read = 45'000;
  std::uint64_t unstable_block_scan = 220'000;  // per unstable block visited
  std::uint64_t request_overhead = 5'500'000;   // decode/encode, certification
  std::uint64_t per_tx_overhead = 90'000;       // per transaction in a block
};

struct StoredUtxo {
  bitcoin::OutPoint outpoint;
  bitcoin::Amount value = 0;
  int height = 0;

  bool operator==(const StoredUtxo&) const = default;
};

/// Hash functor for scriptPubKey byte strings, shared by the stable store's
/// script index and the unstable delta index. Folds eight bytes per step
/// (FNV-style multiply over 64-bit words) instead of the byte-at-a-time loop
/// it replaces — same interface, same lookup behavior, ~8x fewer multiplies
/// on the `by_script_` hot path. Process-local only: values depend on host
/// endianness and must never be serialized.
struct ScriptHash {
  std::size_t operator()(const util::Bytes& b) const noexcept;
};

class UtxoIndex {
 public:
  explicit UtxoIndex(InstructionCosts costs = {}) : costs_(costs) {}

  const InstructionCosts& costs() const { return costs_; }

  /// Inserts an output. OP_RETURN outputs are unspendable and skipped (but
  /// still charged a nominal decode cost).
  void insert(const bitcoin::OutPoint& outpoint, const bitcoin::TxOut& output, int height,
              ic::InstructionMeter& meter);

  /// Removes a spent output; missing outpoints are tolerated (the canister
  /// does not validate transactions, §III-C) but still charged.
  void remove(const bitcoin::OutPoint& outpoint, ic::InstructionMeter& meter);

  /// Applies every transaction of a block (inputs removed, outputs added).
  void apply_block(const bitcoin::Block& block, int height, ic::InstructionMeter& meter);

  /// All UTXOs paying `script_pubkey`, sorted by height descending then by
  /// outpoint (the get_utxos response order). Charges `per_read_cost` per
  /// returned entry (0 = the default stable_utxo_read).
  std::vector<StoredUtxo> utxos_for_script(const util::Bytes& script_pubkey,
                                           ic::InstructionMeter& meter,
                                           std::uint64_t per_read_cost = 0) const;

  /// Pagination-aware variant: walks the script's UTXO list (canonical order)
  /// exactly once, appends the entries with rank [offset, offset + limit)
  /// among those passing `keep(outpoint)` to `out`, and charges
  /// `per_read_cost` only for appended entries — a page meters only what it
  /// returns. Returns the total number of entries passing `keep`.
  template <typename Keep>
  std::size_t utxos_for_script_paged(const util::Bytes& script_pubkey,
                                     ic::InstructionMeter& meter, std::size_t offset,
                                     std::size_t limit, std::vector<StoredUtxo>& out, Keep&& keep,
                                     std::uint64_t per_read_cost = 0) const {
    if (per_read_cost == 0) per_read_cost = costs_.stable_utxo_read;
    auto it = by_script_.find(script_pubkey);
    if (it == by_script_.end()) return 0;
    std::size_t kept = 0;
    for (const auto& [key, value] : it->second) {
      if (!keep(key.outpoint)) continue;
      if (kept >= offset && kept - offset < limit) {
        meter.charge(per_read_cost);
        out.push_back(StoredUtxo{key.outpoint, value, -key.neg_height});
      }
      ++kept;
    }
    return kept;
  }

  /// Keep-all offset/limit overload.
  std::size_t utxos_for_script(const util::Bytes& script_pubkey, ic::InstructionMeter& meter,
                               std::size_t offset, std::size_t limit,
                               std::vector<StoredUtxo>& out,
                               std::uint64_t per_read_cost = 0) const;

  /// Sum of values paying `script_pubkey`.
  bitcoin::Amount balance_of_script(const util::Bytes& script_pubkey,
                                    ic::InstructionMeter& meter) const;

  /// Looks up a single UTXO by outpoint (used to resolve unstable spends of
  /// stable outputs).
  std::optional<StoredUtxo> find(const bitcoin::OutPoint& outpoint) const;
  const util::Bytes* script_of(const bitcoin::OutPoint& outpoint) const;

  /// Visits every entry (unspecified order); used by state serialization.
  template <typename Fn>
  void visit(Fn&& fn) const {
    for (const auto& [outpoint, entry] : by_outpoint_) {
      fn(outpoint, entry.output, entry.height);
    }
  }

  std::size_t size() const { return by_outpoint_.size(); }
  /// Modelled stable-memory footprint in bytes (drives Fig. 5): outpoint +
  /// value + height + script, plus both index overheads.
  std::uint64_t memory_bytes() const { return memory_bytes_; }
  std::size_t distinct_scripts() const { return by_script_.size(); }

  /// Attaches a metrics registry (nullptr detaches): insert/remove rates and
  /// size/memory gauges under `utxo.*`.
  void set_metrics(obs::MetricsRegistry* registry);

  /// Pushes the size/memory gauges to the registry. insert/remove no longer
  /// update gauges per mutation; batch callers (apply_block, the canister's
  /// ingestion loop) flush once per block instead.
  void flush_size_gauges() { update_size_gauges(); }

  /// Deterministic digest of the entire UTXO set: sha256 over the
  /// outpoint-sorted serialization of every entry (outpoint, value, height,
  /// script). Independent of insertion order and hash-map iteration order,
  /// so scalar and parallel ingestion must produce identical digests.
  util::Hash256 digest() const;

 private:
  void update_size_gauges();

  struct Entry {
    bitcoin::TxOut output;
    int height;
  };

  static std::uint64_t entry_footprint(const bitcoin::TxOut& output);

  InstructionCosts costs_;
  std::unordered_map<bitcoin::OutPoint, Entry> by_outpoint_;
  // Script index: script bytes -> (height desc, outpoint) -> value. std::map
  // keeps the pagination order canonical.
  struct Key {
    int neg_height;
    bitcoin::OutPoint outpoint;
    auto operator<=>(const Key&) const = default;
  };
  std::unordered_map<util::Bytes, std::map<Key, bitcoin::Amount>, ScriptHash> by_script_;
  std::uint64_t memory_bytes_ = 0;

  struct Metrics {
    obs::Counter* inserts = nullptr;
    obs::Counter* removes = nullptr;
    obs::Gauge* size = nullptr;
    obs::Gauge* memory = nullptr;
  };
  Metrics metrics_;
};

}  // namespace icbtc::canister
